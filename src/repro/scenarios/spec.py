"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the single way to say "this deployment, this
workload, this long, this seed" -- every entry point (``simulate``,
``bench``, ``faults``, ``sweep``) builds its servers from one, so a
scenario defined once is runnable from every command and shardable
across a worker fleet.

Specs are **plain data**: every field is a scalar, so a spec round-trips
losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` (the wire format the fleet engine ships
to worker processes, and the schema ``python -m repro sweep`` embeds in
its report).  Anything that is not plain data -- a live
``TwoStageRateLimiter``, a jitter model -- is attached *after*
:func:`repro.scenarios.build` by the calling scenario, or passed through
``build``'s ``pod_extras`` escape hatch (such handles are runnable but
not serializable).
"""


def _require(condition, message):
    if not condition:
        raise ValueError(message)


#: Declarative feature-compatibility table.  Each entry is
#: ``(feature_a, feature_b, why)``; a spec that activates both sides of
#: any row is rejected with one uniform message.  Features are named by
#: the spec field that arms them (``_feature_active`` knows how to test
#: each), so adding a new mutually-exclusive pair is one line here
#: instead of another hand-rolled ``_require`` in ``__init__``.
INCOMPATIBLE_FEATURES = (
    (
        "migration", "checkpoint_every_ns",
        "a mid-migration deployment is not quiescent-restorable",
    ),
    (
        "migration", "timeseries_every_ns",
        "the migrated pod is rebuilt mid-run, which would silently "
        "detach its latency tap",
    ),
    (
        "servers", "checkpoint_every_ns",
        "the uplink switch and DPU tier are not snapshot-aware yet",
    ),
)


def _feature_active(spec, feature):
    """Is the named spec feature armed on ``spec``?"""
    value = getattr(spec, feature)
    return bool(value) if isinstance(value, tuple) else value is not None


def _check_feature_compatibility(spec):
    for left, right, why in INCOMPATIBLE_FEATURES:
        if _feature_active(spec, left) and _feature_active(spec, right):
            raise ValueError(f"{left} cannot be combined with {right}: {why}")


class WorkloadSpec:
    """One packet source aimed at a pod's ingress.

    ``rate_pps`` and ``load`` are mutually exclusive: ``load`` is a
    fraction of the target pod's nominal capacity, resolved at build
    time (so the same workload spec scales with the pod it drives).
    """

    KINDS = ("cbr", "microburst")

    __slots__ = (
        "kind", "flows", "tenants", "rate_pps", "load", "size", "stream",
        "population", "zipf_exponent", "burst_factor", "burst_duration_ns",
        "burst_period_ns",
    )

    def __init__(
        self,
        kind="cbr",
        flows=1000,
        tenants=50,
        rate_pps=None,
        load=None,
        size=256,
        stream="traffic",
        population="uniform",
        zipf_exponent=1.05,
        burst_factor=6.0,
        burst_duration_ns=None,
        burst_period_ns=None,
    ):
        _require(kind in self.KINDS, f"unknown workload kind {kind!r}")
        _require(population in ("uniform", "zipf"),
                 f"unknown population {population!r}")
        _require((rate_pps is None) != (load is None),
                 "exactly one of rate_pps/load must be set")
        self.kind = kind
        self.flows = flows
        self.tenants = tenants
        self.rate_pps = rate_pps
        self.load = load
        self.size = size
        self.stream = stream
        self.population = population
        self.zipf_exponent = zipf_exponent
        self.burst_factor = burst_factor
        self.burst_duration_ns = burst_duration_ns
        self.burst_period_ns = burst_period_ns

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class PodSpec:
    """One GW pod, described with scalars only.

    ``per_core_pps`` selects a synthetic service calibrated to that
    per-core rate (the ``ScaledPod`` scaling discipline); when ``None``
    the named paper ``service`` is used instead.

    ``limiter_stage1_pps``/``limiter_stage2_pps`` declare the two-stage
    tenant rate limiter by its per-entry rates; the live
    ``TwoStageRateLimiter`` (with its seeded sampler stream) is
    constructed at build time, so limiter-bearing scenarios stay plain
    data and shard cleanly.
    """

    __slots__ = (
        "name", "data_cores", "ctrl_cores", "mode", "service",
        "per_core_pps", "lookups", "reorder_queues", "rx_capacity",
        "drop_flag_enabled", "acl_drop_probability",
        "silent_drop_probability", "numa_node", "memory_node",
        "limiter_stage1_pps", "limiter_stage2_pps",
    )

    def __init__(
        self,
        name="pod",
        data_cores=4,
        ctrl_cores=2,
        mode="plb",
        service="VPC-Internet",
        per_core_pps=None,
        lookups=4,
        reorder_queues=None,
        rx_capacity=1024,
        drop_flag_enabled=True,
        acl_drop_probability=0.0,
        silent_drop_probability=0.0,
        numa_node=None,
        memory_node=None,
        limiter_stage1_pps=None,
        limiter_stage2_pps=None,
    ):
        _require(data_cores >= 1, "a pod needs at least one data core")
        self.name = name
        self.data_cores = data_cores
        self.ctrl_cores = ctrl_cores
        self.mode = mode
        self.service = service
        self.per_core_pps = per_core_pps
        self.lookups = lookups
        self.reorder_queues = reorder_queues
        self.rx_capacity = rx_capacity
        self.drop_flag_enabled = drop_flag_enabled
        self.acl_drop_probability = acl_drop_probability
        self.silent_drop_probability = silent_drop_probability
        self.numa_node = numa_node
        self.memory_node = memory_node
        self.limiter_stage1_pps = limiter_stage1_pps
        self.limiter_stage2_pps = limiter_stage2_pps

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class MigrationSpec:
    """A planned live migration of one pod, described with scalars only.

    The live :class:`~repro.controlplane.migration.MigrationController`
    is constructed at build time (the same discipline as the limiter
    fields on :class:`PodSpec`), so migration-bearing scenarios remain
    plain data and shard cleanly across the fleet.

    Parameters:
        pod: name of the pod to migrate (must exist in the spec).
        server: for topology specs, the name of the server hosting the
            pod.  Optional (the pod name alone is unambiguous -- pod
            names are unique across the AZ), but when set it must match
            the server that actually hosts the pod, so an operator
            playbook that names both cannot silently act on a stale
            placement.  Must be ``None`` on single-server specs.
        start_ns: sim time at which the controller begins the drain.
        target_numa_node / target_memory_node: placement for the restored
            pod; ``None`` lets the server pick (first node with room --
            typically the original placement, i.e. an in-place restart).
        poll_ns: drain-poll interval (how often quiescence is checked).
        freeze_ns: fixed checkpoint cost once the pod is quiescent.
        per_kib_ns: additional freeze cost per KiB of serialized
            snapshot (models state-transfer bandwidth).
        restore_ns: cost of rebuilding the pod from the snapshot.
        route_update_ns: route-propagation delay before traffic is
            released to the restored pod.
        flush_rate_pps: pace at which buffered packets are released to
            the restored pod (the upstream buffer drains at line rate,
            not in one burst).  ``None`` releases the whole buffer in a
            single event -- fine for idle pods, but a large burst can
            exceed the reorder timeout window and leave as best-effort.
            Set it at or below the pod's capacity to keep the
            zero-reordering guarantee under load.
    """

    __slots__ = (
        "pod", "start_ns", "target_numa_node", "target_memory_node",
        "poll_ns", "freeze_ns", "per_kib_ns", "restore_ns",
        "route_update_ns", "flush_rate_pps", "server",
    )

    def __init__(
        self,
        pod,
        start_ns,
        target_numa_node=None,
        target_memory_node=None,
        poll_ns=50_000,
        freeze_ns=0,
        per_kib_ns=0,
        restore_ns=0,
        route_update_ns=0,
        flush_rate_pps=None,
        server=None,
    ):
        _require(bool(pod), "a migration needs a pod name")
        _require(start_ns >= 0, "migration start_ns must be >= 0")
        _require(poll_ns > 0, "migration poll_ns must be > 0")
        _require(
            flush_rate_pps is None or flush_rate_pps > 0,
            "migration flush_rate_pps must be > 0 when set",
        )
        self.pod = pod
        self.start_ns = start_ns
        self.target_numa_node = target_numa_node
        self.target_memory_node = target_memory_node
        self.poll_ns = poll_ns
        self.freeze_ns = freeze_ns
        self.per_kib_ns = per_kib_ns
        self.restore_ns = restore_ns
        self.route_update_ns = route_update_ns
        self.flush_rate_pps = flush_rate_pps
        self.server = server

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class ServerSpec:
    """One gateway server of an AZ topology, described with scalars only.

    Groups the :class:`PodSpec` deployments the server hosts; NUMA
    placement stays a per-pod concern (``PodSpec.numa_node`` /
    ``memory_node``), exactly as on single-server specs.  Pod names must
    be unique across the whole AZ -- the uplink addresses pods by name.
    """

    __slots__ = ("name", "pods")

    def __init__(self, name, pods=()):
        _require(bool(name), "a server needs a name")
        pods = tuple(pods)
        _require(bool(pods), f"server {name!r} needs at least one pod")
        seen = set()
        for pod in pods:
            _require(pod.name not in seen, f"duplicate pod name {pod.name!r}")
            seen.add(pod.name)
        self.name = name
        self.pods = pods

    def to_dict(self):
        return {"name": self.name, "pods": [pod.to_dict() for pod in self.pods]}

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            pods=tuple(PodSpec.from_dict(pod) for pod in data["pods"]),
        )


class EcmpSpec:
    """The AZ uplink switch's ECMP behaviour, described with scalars only.

    Parameters:
        hash_seed: seed for the uplink's 5-tuple CRC hash (the same
            seeded-hash family :mod:`repro.packet.hashing` gives the
            limiter and the PLB order-queue selector, so uplink spraying
            is uncorrelated with both).
        pod_hash_seed: seed for the second-level per-server pod pick on
            servers hosting more than one pod.
        pin_flows: when True (default) the uplink pins each flow to the
            server its first packet hashed to, so a flow's server never
            changes for its lifetime -- the cross-server session-affinity
            invariant that makes per-flow ordering across the AZ trivial.
    """

    __slots__ = ("hash_seed", "pod_hash_seed", "pin_flows")

    def __init__(self, hash_seed=101, pod_hash_seed=211, pin_flows=True):
        self.hash_seed = hash_seed
        self.pod_hash_seed = pod_hash_seed
        self.pin_flows = pin_flows

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class DpuTierSpec:
    """The cheap per-server "DPU" pre-classifier tier, scalars only.

    Hot tenants are promoted into the DPU's fast table by the hitter
    machinery (:class:`~repro.core.hitters.SpaceSavingSketch` ranked per
    epoch); promoted traffic is forwarded at ``fast_latency_ns`` without
    ever touching the server's NIC/FPGA+CPU pipeline, and tenants quiet
    for ``demote_after_epochs`` epochs fall back to the slow path.

    Parameters:
        table_capacity: fast-table entries per server DPU.
        threshold_pps: observed per-tenant rate above which a tenant is
            promoted.
        epoch_ns: detection epoch; the sketch resets every epoch.
        demote_after_epochs: quiet epochs before a promoted tenant is
            demoted.
        fast_latency_ns: fixed DPU forwarding latency for fast-path hits.
        sketch_capacity: tracked tenants in the space-saving sketch.
    """

    __slots__ = (
        "table_capacity", "threshold_pps", "epoch_ns",
        "demote_after_epochs", "fast_latency_ns", "sketch_capacity",
    )

    def __init__(
        self,
        table_capacity=256,
        threshold_pps=5_000,
        epoch_ns=10_000_000,
        demote_after_epochs=2,
        fast_latency_ns=2_000,
        sketch_capacity=1024,
    ):
        _require(table_capacity > 0, "dpu table_capacity must be > 0")
        _require(threshold_pps > 0, "dpu threshold_pps must be > 0")
        _require(epoch_ns > 0, "dpu epoch_ns must be > 0")
        _require(demote_after_epochs > 0, "dpu demote_after_epochs must be > 0")
        _require(fast_latency_ns >= 0, "dpu fast_latency_ns must be >= 0")
        _require(sketch_capacity > 0, "dpu sketch_capacity must be > 0")
        self.table_capacity = table_capacity
        self.threshold_pps = threshold_pps
        self.epoch_ns = epoch_ns
        self.demote_after_epochs = demote_after_epochs
        self.fast_latency_ns = fast_latency_ns
        self.sketch_capacity = sketch_capacity

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class ScenarioSpec:
    """A named, seeded, fully-declarative simulation run.

    Parameters:
        name: scenario identity (report key, rng namespace for extras).
        pods: tuple of :class:`PodSpec` (may be empty for control-plane
            scenarios that build no gateway server).
        workload: optional :class:`WorkloadSpec` aimed at the first pod;
            scenarios with bespoke traffic leave it ``None`` and attach
            sources through the built handle.
        duration_ns: how long :meth:`RunHandle.run` advances the clock.
        seed: the experiment seed every rng stream derives from.
        migration: optional :class:`MigrationSpec`; build time attaches a
            :class:`~repro.controlplane.migration.MigrationController`
            that executes it as clock-driven events.
        checkpoint_every_ns: optional periodic ``SimCheckpoint`` cadence;
            build time attaches a :class:`~repro.controlplane.snapshot.
            SimCheckpointer` that freezes the whole deployment every
            that many sim-ns (at quiescent instants), giving long shards
            a restart point.  Mutually exclusive with ``migration`` --
            a mid-migration deployment is not quiescent-restorable.
        timeseries_every_ns: optional windowed-telemetry cadence; build
            time attaches a :class:`~repro.telemetry.TimeSeriesRecorder`
            that samples every pod at that window and the run report
            grows a ``"timeseries"`` section.
        servers: tuple of :class:`ServerSpec` -- an AZ of gateway
            servers behind an ECMP uplink.  Mutually exclusive with
            flat ``pods`` (a spec is either single-server, with pods at
            the top level, or a topology).
        ecmp: optional :class:`EcmpSpec` tuning the uplink switch;
            ``None`` with ``servers`` set means defaults.
        dpu_tier: optional :class:`DpuTierSpec` arming the per-server
            DPU pre-classifier in front of each NIC/FPGA+CPU pipeline.

    Feature pairs that cannot be combined live in the declarative
    :data:`INCOMPATIBLE_FEATURES` table, not in ad-hoc guards here.
    """

    def __init__(self, name, pods=(), workload=None, duration_ns=0, seed=42,
                 migration=None, checkpoint_every_ns=None,
                 timeseries_every_ns=None, servers=(), ecmp=None,
                 dpu_tier=None):
        _require(bool(name), "a scenario needs a name")
        pods = tuple(pods)
        servers = tuple(servers)
        _require(
            not (pods and servers),
            "a scenario declares flat pods or a server topology, not both",
        )
        _require(
            servers or (ecmp is None and dpu_tier is None),
            "ecmp/dpu_tier require a server topology (set servers)",
        )
        seen_servers = set()
        for server in servers:
            _require(
                server.name not in seen_servers,
                f"duplicate server name {server.name!r}",
            )
            seen_servers.add(server.name)
        pod_homes = {}
        seen = set()
        for server_name, pod in (
            [(None, pod) for pod in pods]
            + [(server.name, pod) for server in servers for pod in server.pods]
        ):
            _require(pod.name not in seen, f"duplicate pod name {pod.name!r}")
            seen.add(pod.name)
            pod_homes[pod.name] = server_name
        if migration is not None:
            _require(
                migration.pod in seen,
                f"migration targets unknown pod {migration.pod!r}",
            )
            if migration.server is not None:
                _require(
                    bool(servers),
                    f"migration names server {migration.server!r} but the "
                    f"spec has no topology",
                )
                home = pod_homes[migration.pod]
                _require(
                    migration.server == home,
                    f"migration targets pod {migration.pod!r} on server "
                    f"{migration.server!r}, but it lives on {home!r}",
                )
        if checkpoint_every_ns is not None:
            _require(
                checkpoint_every_ns > 0,
                "checkpoint_every_ns must be > 0 when set",
            )
        if timeseries_every_ns is not None:
            _require(
                timeseries_every_ns > 0,
                "timeseries_every_ns must be > 0 when set",
            )
        self.name = name
        self.pods = pods
        self.workload = workload
        self.duration_ns = duration_ns
        self.seed = seed
        self.migration = migration
        self.checkpoint_every_ns = checkpoint_every_ns
        self.timeseries_every_ns = timeseries_every_ns
        self.servers = servers
        self.ecmp = ecmp
        self.dpu_tier = dpu_tier
        _check_feature_compatibility(self)

    @property
    def all_pods(self):
        """Every :class:`PodSpec`, across flat pods and all servers."""
        if self.servers:
            return tuple(
                pod for server in self.servers for pod in server.pods
            )
        return self.pods

    def to_dict(self):
        data = {
            "name": self.name,
            "pods": [pod.to_dict() for pod in self.pods],
            "workload": None if self.workload is None else self.workload.to_dict(),
            "duration_ns": self.duration_ns,
            "seed": self.seed,
            "migration": (
                None if self.migration is None else self.migration.to_dict()
            ),
            "checkpoint_every_ns": self.checkpoint_every_ns,
            "timeseries_every_ns": self.timeseries_every_ns,
        }
        # Topology keys appear only on topology specs: single-server
        # wire dicts (and their spec fingerprints, which key the durable
        # run store's resume cache) stay byte-for-byte what they were
        # before the topology fields existed.
        if self.servers:
            data["servers"] = [server.to_dict() for server in self.servers]
            data["ecmp"] = None if self.ecmp is None else self.ecmp.to_dict()
            data["dpu_tier"] = (
                None if self.dpu_tier is None else self.dpu_tier.to_dict()
            )
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            pods=tuple(PodSpec.from_dict(pod) for pod in data["pods"]),
            workload=(
                None if data.get("workload") is None
                else WorkloadSpec.from_dict(data["workload"])
            ),
            duration_ns=data["duration_ns"],
            seed=data["seed"],
            migration=(
                None if data.get("migration") is None
                else MigrationSpec.from_dict(data["migration"])
            ),
            # .get: specs serialized before these fields existed load fine.
            checkpoint_every_ns=data.get("checkpoint_every_ns"),
            timeseries_every_ns=data.get("timeseries_every_ns"),
            servers=tuple(
                ServerSpec.from_dict(server)
                for server in data.get("servers") or ()
            ),
            ecmp=(
                None if data.get("ecmp") is None
                else EcmpSpec.from_dict(data["ecmp"])
            ),
            dpu_tier=(
                None if data.get("dpu_tier") is None
                else DpuTierSpec.from_dict(data["dpu_tier"])
            ),
        )

    def with_overrides(self, seed=None, duration_ns=None, overrides=None):
        """A copy with ``seed``/``duration_ns`` and dotted field overrides.

        ``overrides`` maps dotted paths into the serialized form to new
        values, e.g. ``{"workload.tenants": 100_000}`` or
        ``{"pods.0.data_cores": 8}``.
        """
        data = self.to_dict()
        if seed is not None:
            data["seed"] = seed
        if duration_ns is not None:
            data["duration_ns"] = duration_ns
        for path, value in (overrides or {}).items():
            apply_override(data, path, value)
        return ScenarioSpec.from_dict(data)

    def __repr__(self):
        return (
            f"<ScenarioSpec {self.name!r}: {len(self.pods)} pod(s), "
            f"{self.duration_ns} ns, seed {self.seed}>"
        )


def _override_step(node, part, path):
    """Resolve one path component, or raise the uniform KeyError."""
    missing = KeyError(f"override path {path!r} does not exist in the spec")
    if isinstance(node, list):
        try:
            index = int(part)
        except ValueError:
            raise missing from None
        if not -len(node) <= index < len(node):
            raise missing
        return node, index
    if not isinstance(node, dict) or part not in node:
        raise missing
    return node, part


def apply_override(data, path, value):
    """Set ``path`` (dotted, list indices allowed) in a spec dict.

    Every malformed path -- a missing dict key, a non-integer or
    out-of-range list index, or a path that descends through a scalar --
    raises the same ``KeyError`` naming the full path.
    """
    parts = path.split(".")
    node = data
    for part in parts[:-1]:
        node, key = _override_step(node, part, path)
        node = node[key]
    node, key = _override_step(node, parts[-1], path)
    node[key] = value
