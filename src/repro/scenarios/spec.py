"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the single way to say "this deployment, this
workload, this long, this seed" -- every entry point (``simulate``,
``bench``, ``faults``, ``sweep``) builds its servers from one, so a
scenario defined once is runnable from every command and shardable
across a worker fleet.

Specs are **plain data**: every field is a scalar, so a spec round-trips
losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` (the wire format the fleet engine ships
to worker processes, and the schema ``python -m repro sweep`` embeds in
its report).  Anything that is not plain data -- a live
``TwoStageRateLimiter``, a jitter model -- is attached *after*
:func:`repro.scenarios.build` by the calling scenario, or passed through
``build``'s ``pod_extras`` escape hatch (such handles are runnable but
not serializable).
"""


def _require(condition, message):
    if not condition:
        raise ValueError(message)


class WorkloadSpec:
    """One packet source aimed at a pod's ingress.

    ``rate_pps`` and ``load`` are mutually exclusive: ``load`` is a
    fraction of the target pod's nominal capacity, resolved at build
    time (so the same workload spec scales with the pod it drives).
    """

    KINDS = ("cbr", "microburst")

    __slots__ = (
        "kind", "flows", "tenants", "rate_pps", "load", "size", "stream",
        "population", "zipf_exponent", "burst_factor", "burst_duration_ns",
        "burst_period_ns",
    )

    def __init__(
        self,
        kind="cbr",
        flows=1000,
        tenants=50,
        rate_pps=None,
        load=None,
        size=256,
        stream="traffic",
        population="uniform",
        zipf_exponent=1.05,
        burst_factor=6.0,
        burst_duration_ns=None,
        burst_period_ns=None,
    ):
        _require(kind in self.KINDS, f"unknown workload kind {kind!r}")
        _require(population in ("uniform", "zipf"),
                 f"unknown population {population!r}")
        _require((rate_pps is None) != (load is None),
                 "exactly one of rate_pps/load must be set")
        self.kind = kind
        self.flows = flows
        self.tenants = tenants
        self.rate_pps = rate_pps
        self.load = load
        self.size = size
        self.stream = stream
        self.population = population
        self.zipf_exponent = zipf_exponent
        self.burst_factor = burst_factor
        self.burst_duration_ns = burst_duration_ns
        self.burst_period_ns = burst_period_ns

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class PodSpec:
    """One GW pod, described with scalars only.

    ``per_core_pps`` selects a synthetic service calibrated to that
    per-core rate (the ``ScaledPod`` scaling discipline); when ``None``
    the named paper ``service`` is used instead.

    ``limiter_stage1_pps``/``limiter_stage2_pps`` declare the two-stage
    tenant rate limiter by its per-entry rates; the live
    ``TwoStageRateLimiter`` (with its seeded sampler stream) is
    constructed at build time, so limiter-bearing scenarios stay plain
    data and shard cleanly.
    """

    __slots__ = (
        "name", "data_cores", "ctrl_cores", "mode", "service",
        "per_core_pps", "lookups", "reorder_queues", "rx_capacity",
        "drop_flag_enabled", "acl_drop_probability",
        "silent_drop_probability", "numa_node", "memory_node",
        "limiter_stage1_pps", "limiter_stage2_pps",
    )

    def __init__(
        self,
        name="pod",
        data_cores=4,
        ctrl_cores=2,
        mode="plb",
        service="VPC-Internet",
        per_core_pps=None,
        lookups=4,
        reorder_queues=None,
        rx_capacity=1024,
        drop_flag_enabled=True,
        acl_drop_probability=0.0,
        silent_drop_probability=0.0,
        numa_node=None,
        memory_node=None,
        limiter_stage1_pps=None,
        limiter_stage2_pps=None,
    ):
        _require(data_cores >= 1, "a pod needs at least one data core")
        self.name = name
        self.data_cores = data_cores
        self.ctrl_cores = ctrl_cores
        self.mode = mode
        self.service = service
        self.per_core_pps = per_core_pps
        self.lookups = lookups
        self.reorder_queues = reorder_queues
        self.rx_capacity = rx_capacity
        self.drop_flag_enabled = drop_flag_enabled
        self.acl_drop_probability = acl_drop_probability
        self.silent_drop_probability = silent_drop_probability
        self.numa_node = numa_node
        self.memory_node = memory_node
        self.limiter_stage1_pps = limiter_stage1_pps
        self.limiter_stage2_pps = limiter_stage2_pps

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class MigrationSpec:
    """A planned live migration of one pod, described with scalars only.

    The live :class:`~repro.controlplane.migration.MigrationController`
    is constructed at build time (the same discipline as the limiter
    fields on :class:`PodSpec`), so migration-bearing scenarios remain
    plain data and shard cleanly across the fleet.

    Parameters:
        pod: name of the pod to migrate (must exist in the spec).
        start_ns: sim time at which the controller begins the drain.
        target_numa_node / target_memory_node: placement for the restored
            pod; ``None`` lets the server pick (first node with room --
            typically the original placement, i.e. an in-place restart).
        poll_ns: drain-poll interval (how often quiescence is checked).
        freeze_ns: fixed checkpoint cost once the pod is quiescent.
        per_kib_ns: additional freeze cost per KiB of serialized
            snapshot (models state-transfer bandwidth).
        restore_ns: cost of rebuilding the pod from the snapshot.
        route_update_ns: route-propagation delay before traffic is
            released to the restored pod.
        flush_rate_pps: pace at which buffered packets are released to
            the restored pod (the upstream buffer drains at line rate,
            not in one burst).  ``None`` releases the whole buffer in a
            single event -- fine for idle pods, but a large burst can
            exceed the reorder timeout window and leave as best-effort.
            Set it at or below the pod's capacity to keep the
            zero-reordering guarantee under load.
    """

    __slots__ = (
        "pod", "start_ns", "target_numa_node", "target_memory_node",
        "poll_ns", "freeze_ns", "per_kib_ns", "restore_ns",
        "route_update_ns", "flush_rate_pps",
    )

    def __init__(
        self,
        pod,
        start_ns,
        target_numa_node=None,
        target_memory_node=None,
        poll_ns=50_000,
        freeze_ns=0,
        per_kib_ns=0,
        restore_ns=0,
        route_update_ns=0,
        flush_rate_pps=None,
    ):
        _require(bool(pod), "a migration needs a pod name")
        _require(start_ns >= 0, "migration start_ns must be >= 0")
        _require(poll_ns > 0, "migration poll_ns must be > 0")
        _require(
            flush_rate_pps is None or flush_rate_pps > 0,
            "migration flush_rate_pps must be > 0 when set",
        )
        self.pod = pod
        self.start_ns = start_ns
        self.target_numa_node = target_numa_node
        self.target_memory_node = target_memory_node
        self.poll_ns = poll_ns
        self.freeze_ns = freeze_ns
        self.per_kib_ns = per_kib_ns
        self.restore_ns = restore_ns
        self.route_update_ns = route_update_ns
        self.flush_rate_pps = flush_rate_pps

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class ScenarioSpec:
    """A named, seeded, fully-declarative simulation run.

    Parameters:
        name: scenario identity (report key, rng namespace for extras).
        pods: tuple of :class:`PodSpec` (may be empty for control-plane
            scenarios that build no gateway server).
        workload: optional :class:`WorkloadSpec` aimed at the first pod;
            scenarios with bespoke traffic leave it ``None`` and attach
            sources through the built handle.
        duration_ns: how long :meth:`RunHandle.run` advances the clock.
        seed: the experiment seed every rng stream derives from.
        migration: optional :class:`MigrationSpec`; build time attaches a
            :class:`~repro.controlplane.migration.MigrationController`
            that executes it as clock-driven events.
        checkpoint_every_ns: optional periodic ``SimCheckpoint`` cadence;
            build time attaches a :class:`~repro.controlplane.snapshot.
            SimCheckpointer` that freezes the whole deployment every
            that many sim-ns (at quiescent instants), giving long shards
            a restart point.  Mutually exclusive with ``migration`` --
            a mid-migration deployment is not quiescent-restorable.
        timeseries_every_ns: optional windowed-telemetry cadence; build
            time attaches a :class:`~repro.telemetry.TimeSeriesRecorder`
            that samples every pod at that window and the run report
            grows a ``"timeseries"`` section.  Mutually exclusive with
            ``migration``: the migrated pod is rebuilt mid-run, which
            would silently detach its latency tap.
    """

    def __init__(self, name, pods=(), workload=None, duration_ns=0, seed=42,
                 migration=None, checkpoint_every_ns=None,
                 timeseries_every_ns=None):
        _require(bool(name), "a scenario needs a name")
        pods = tuple(pods)
        seen = set()
        for pod in pods:
            _require(pod.name not in seen, f"duplicate pod name {pod.name!r}")
            seen.add(pod.name)
        if migration is not None:
            _require(
                migration.pod in seen,
                f"migration targets unknown pod {migration.pod!r}",
            )
        if checkpoint_every_ns is not None:
            _require(
                checkpoint_every_ns > 0,
                "checkpoint_every_ns must be > 0 when set",
            )
            _require(
                migration is None,
                "checkpoint_every_ns cannot be combined with a migration",
            )
        if timeseries_every_ns is not None:
            _require(
                timeseries_every_ns > 0,
                "timeseries_every_ns must be > 0 when set",
            )
            _require(
                migration is None,
                "timeseries_every_ns cannot be combined with a migration",
            )
        self.name = name
        self.pods = pods
        self.workload = workload
        self.duration_ns = duration_ns
        self.seed = seed
        self.migration = migration
        self.checkpoint_every_ns = checkpoint_every_ns
        self.timeseries_every_ns = timeseries_every_ns

    def to_dict(self):
        return {
            "name": self.name,
            "pods": [pod.to_dict() for pod in self.pods],
            "workload": None if self.workload is None else self.workload.to_dict(),
            "duration_ns": self.duration_ns,
            "seed": self.seed,
            "migration": (
                None if self.migration is None else self.migration.to_dict()
            ),
            "checkpoint_every_ns": self.checkpoint_every_ns,
            "timeseries_every_ns": self.timeseries_every_ns,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            pods=tuple(PodSpec.from_dict(pod) for pod in data["pods"]),
            workload=(
                None if data.get("workload") is None
                else WorkloadSpec.from_dict(data["workload"])
            ),
            duration_ns=data["duration_ns"],
            seed=data["seed"],
            migration=(
                None if data.get("migration") is None
                else MigrationSpec.from_dict(data["migration"])
            ),
            # .get: specs serialized before these fields existed load fine.
            checkpoint_every_ns=data.get("checkpoint_every_ns"),
            timeseries_every_ns=data.get("timeseries_every_ns"),
        )

    def with_overrides(self, seed=None, duration_ns=None, overrides=None):
        """A copy with ``seed``/``duration_ns`` and dotted field overrides.

        ``overrides`` maps dotted paths into the serialized form to new
        values, e.g. ``{"workload.tenants": 100_000}`` or
        ``{"pods.0.data_cores": 8}``.
        """
        data = self.to_dict()
        if seed is not None:
            data["seed"] = seed
        if duration_ns is not None:
            data["duration_ns"] = duration_ns
        for path, value in (overrides or {}).items():
            apply_override(data, path, value)
        return ScenarioSpec.from_dict(data)

    def __repr__(self):
        return (
            f"<ScenarioSpec {self.name!r}: {len(self.pods)} pod(s), "
            f"{self.duration_ns} ns, seed {self.seed}>"
        )


def apply_override(data, path, value):
    """Set ``path`` (dotted, list indices allowed) in a spec dict."""
    parts = path.split(".")
    node = data
    for part in parts[:-1]:
        node = node[int(part)] if isinstance(node, list) else node[part]
    leaf = parts[-1]
    if isinstance(node, list):
        node[int(leaf)] = value
    else:
        if node is None or leaf not in node:
            raise KeyError(f"override path {path!r} does not exist in the spec")
        node[leaf] = value
