"""The unified scenario registry.

One place that names every canonical :class:`ScenarioSpec`; ``bench``
runs them under a timer, ``sweep`` shards them across workers, and
``python -m repro inventory`` lists them next to the experiments and
fault plans.  Each entry is a factory ``fn(quick) -> ScenarioSpec`` so
quick mode can shorten durations without forking the definition.
"""

from repro.scenarios.spec import (
    DpuTierSpec,
    EcmpSpec,
    PodSpec,
    ScenarioSpec,
    ServerSpec,
    WorkloadSpec,
)
from repro.sim.units import MS


def steady_state_plb(quick=False):
    """Steady-state PLB spray: 4 cores, 70% load, uniform flows."""
    return ScenarioSpec(
        name="steady-state-plb",
        pods=(PodSpec(name="pod", data_cores=4, per_core_pps=200_000, mode="plb"),),
        workload=WorkloadSpec(
            kind="cbr", flows=64, tenants=4, load=0.7, stream="bench-cbr"
        ),
        duration_ns=(50 if quick else 200) * MS,
        seed=1,
    )


def microburst_reorder(quick=False):
    """Microburst reorder stress: 6x bursts into 256-slot RX rings."""
    return ScenarioSpec(
        name="microburst-reorder",
        pods=(
            PodSpec(
                name="pod", data_cores=4, per_core_pps=150_000, mode="plb",
                rx_capacity=256,
            ),
        ),
        workload=WorkloadSpec(
            kind="microburst", flows=128, tenants=8, load=0.6,
            stream="bench-burst", burst_factor=6.0,
            burst_duration_ns=5 * MS, burst_period_ns=25 * MS,
        ),
        duration_ns=(100 if quick else 400) * MS,
        seed=2,
    )


def ratelimit_churn(quick=False):
    """Two-stage limiter at 90% load (the churn loop rides on top)."""
    return ScenarioSpec(
        name="ratelimit-churn",
        pods=(PodSpec(name="pod", data_cores=4, per_core_pps=100_000, mode="plb"),),
        workload=WorkloadSpec(
            kind="cbr", flows=64, tenants=16, load=0.9, stream="bench-cbr"
        ),
        duration_ns=(80 if quick else 300) * MS,
        seed=3,
    )


def fleet_steady(quick=False, tenants=1000):
    """Tenant-scaling unit shard: one flow per tenant, per-tenant limiter.

    The per-entry stage-1 rate (10 pps) puts the enforcement crossover
    inside the tenant axis: at 1k tenants each VNI offers ~120 pps and
    the limiter bites hard; by 50k tenants per-VNI load is under the
    bucket rate and drops fade to hash-collision noise -- the paper's
    "millions of tenants in 2 MB of SRAM" story at laptop scale.
    """
    return ScenarioSpec(
        name="fleet-steady",
        pods=(
            PodSpec(
                name="pod", data_cores=4, per_core_pps=50_000, mode="plb",
                limiter_stage1_pps=10, limiter_stage2_pps=3,
            ),
        ),
        workload=WorkloadSpec(
            kind="cbr", flows=tenants, tenants=tenants, load=0.6,
            stream="traffic",
        ),
        duration_ns=(40 if quick else 200) * MS,
        seed=42,
        # Periodic SimCheckpoints: a killed tenant-scaling shard resumes
        # from its last quiescent 10 ms boundary instead of zero.
        checkpoint_every_ns=10 * MS,
    )


def az_steady(quick=False, servers=2, tenants=10_000):
    """AZ steady state: N ECMP servers, zipf tenants, DPU tier armed.

    The zipf head gives the promotion policy real hot flows (the top
    talkers clear ``threshold_pps`` comfortably at 60% load) while the
    long tail keeps the host tier busy, so both tiers show up in the
    report with meaningful counts at any ``servers`` setting.
    """
    return ScenarioSpec(
        name="az-steady",
        servers=tuple(
            ServerSpec(
                name=f"srv{index}",
                pods=(
                    PodSpec(
                        name=f"srv{index}-pod", data_cores=4,
                        per_core_pps=50_000, mode="plb",
                    ),
                ),
            )
            for index in range(servers)
        ),
        ecmp=EcmpSpec(),
        dpu_tier=DpuTierSpec(),
        workload=WorkloadSpec(
            kind="cbr", flows=tenants, tenants=tenants, load=0.6,
            population="zipf", stream="traffic",
        ),
        duration_ns=(40 if quick else 200) * MS,
        seed=42,
    )


#: Ordered (name, factory) pairs; listing order is the inventory order.
SCENARIO_FACTORIES = (
    ("steady-state-plb", steady_state_plb),
    ("microburst-reorder", microburst_reorder),
    ("ratelimit-churn", ratelimit_churn),
    ("fleet-steady", fleet_steady),
    ("az-steady", az_steady),
)


def scenario_names():
    return tuple(name for name, _ in SCENARIO_FACTORIES)


def scenario_spec(name, quick=False, **kwargs):
    """Build the named canonical spec (``kwargs`` go to its factory)."""
    for key, factory in SCENARIO_FACTORIES:
        if key == name:
            return factory(quick=quick, **kwargs)
    raise ValueError(
        f"unknown scenario {name!r}; choose from {', '.join(scenario_names())}"
    )


def scenario_descriptions():
    """{name: first docstring line} for ``inventory``."""
    return {
        name: (factory.__doc__ or "").strip().splitlines()[0]
        for name, factory in SCENARIO_FACTORIES
    }
