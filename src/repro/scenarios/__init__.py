"""Unified scenario API: define a scenario once, run it from anywhere.

* :class:`ScenarioSpec` (with :class:`PodSpec` and :class:`WorkloadSpec`)
  is the plain-data description of a run -- deployment, workload,
  duration, seed -- serializable via ``to_dict``/``from_dict``.
* :func:`build` turns a spec into a live :class:`RunHandle` (simulator,
  server, pods, sources) every entry point drives: ``simulate`` runs one
  and prints it, ``bench`` times them, ``faults`` wires injectors onto
  them, and ``sweep`` ships them to worker processes and merges the
  run reports.
* :mod:`repro.scenarios.registry` names the canonical specs.
"""

from repro.scenarios.build import RunHandle, build, scaled_service
from repro.scenarios.registry import (
    SCENARIO_FACTORIES,
    scenario_descriptions,
    scenario_names,
    scenario_spec,
)
from repro.scenarios.spec import (
    DpuTierSpec,
    EcmpSpec,
    MigrationSpec,
    PodSpec,
    ScenarioSpec,
    ServerSpec,
    WorkloadSpec,
    apply_override,
)

__all__ = [
    "DpuTierSpec",
    "EcmpSpec",
    "MigrationSpec",
    "PodSpec",
    "RunHandle",
    "SCENARIO_FACTORIES",
    "ScenarioSpec",
    "ServerSpec",
    "WorkloadSpec",
    "apply_override",
    "build",
    "scaled_service",
    "scenario_descriptions",
    "scenario_names",
    "scenario_spec",
]
