"""Build a :class:`ScenarioSpec` into a running deployment.

``build(spec)`` is the one construction path behind every entry point:
it creates the simulator, the rng registry, an
:class:`~repro.core.gateway.AlbatrossServer`, one pod per
:class:`~repro.scenarios.spec.PodSpec` and (optionally) the declared
workload, and returns a :class:`RunHandle` the caller drives.

The handle's :meth:`RunHandle.report` emits the **run report**: a plain,
deterministic, JSON-safe dict -- the unit the fleet engine merges across
shards, so its key order and value types must stay stable.
"""

from repro.core.gateway import AlbatrossServer, PodConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def scaled_service(name="scaled", per_core_pps=100_000, lookups=4):
    """A synthetic service whose saturated per-core rate is ``per_core_pps``.

    Uses the analytic 35% hit-rate lookup cost to solve for base_ns, so the
    paper-level per-core ratios carry over exactly at laptop packet rates.
    """
    from repro.cpu.service import GatewayService, LookupSpec, MemoryTimings

    timings = MemoryTimings()
    lookup_ns = timings.expected_lookup_ns(0.35)
    total_ns = 1e9 / per_core_pps
    base_ns = max(1, int(total_ns - lookups * lookup_ns))
    specs = [LookupSpec(f"table{i}", 1_000_000, 256) for i in range(lookups)]
    return GatewayService(name, base_ns, specs)


def _pod_config(pod_spec, extras=None):
    """Translate a :class:`PodSpec` into a :class:`PodConfig`."""
    extras = dict(extras or {})
    custom_service = None
    if pod_spec.per_core_pps is not None:
        custom_service = scaled_service(
            per_core_pps=pod_spec.per_core_pps, lookups=pod_spec.lookups
        )
    return PodConfig(
        name=pod_spec.name,
        data_cores=pod_spec.data_cores,
        ctrl_cores=pod_spec.ctrl_cores,
        service=pod_spec.service,
        mode=pod_spec.mode,
        reorder_queues=pod_spec.reorder_queues,
        rx_capacity=pod_spec.rx_capacity,
        drop_flag_enabled=pod_spec.drop_flag_enabled,
        acl_drop_probability=pod_spec.acl_drop_probability,
        silent_drop_probability=pod_spec.silent_drop_probability,
        numa_node=pod_spec.numa_node,
        memory_node=pod_spec.memory_node,
        custom_service=custom_service,
        **extras,
    )


def _build_pod(pod_spec, server, rngs, pod_extras):
    """Add one pod to ``server``, wiring the limiter extra when declared."""
    extras = dict(pod_extras.get(pod_spec.name, {}))
    if pod_spec.limiter_stage1_pps is not None and "rate_limiter" not in extras:
        from repro.core.ratelimit import TwoStageRateLimiter

        extras["rate_limiter"] = TwoStageRateLimiter(
            rngs.stream(f"limiter.{pod_spec.name}"),
            stage1_rate_pps=pod_spec.limiter_stage1_pps,
            stage2_rate_pps=(
                pod_spec.limiter_stage2_pps
                if pod_spec.limiter_stage2_pps is not None
                else pod_spec.limiter_stage1_pps // 4 or 1
            ),
        )
    return server.add_pod(_pod_config(pod_spec, extras))


class ServerRuntime:
    """One live AZ member: its deployment, pods and offload tier."""

    __slots__ = ("name", "server", "pods", "dispatch", "dpu", "promoter")

    def __init__(self, name, server, pods, dispatch, dpu=None, promoter=None):
        self.name = name
        self.server = server        # the AlbatrossServer
        self.pods = pods            # {name: GwPodRuntime}, spec order
        self.dispatch = dispatch    # FlowPodDispatch
        self.dpu = dpu              # DpuPreClassifier or None
        self.promoter = promoter    # HotFlowPromoter or None


class TopologyRuntime:
    """The live AZ: the ECMP uplink plus every :class:`ServerRuntime`."""

    __slots__ = ("uplink", "servers")

    def __init__(self, uplink, servers):
        self.uplink = uplink
        self.servers = servers      # {name: ServerRuntime}, spec order


def _build_population(workload):
    from repro.workloads.generators import uniform_population, zipf_population

    if workload.population == "zipf":
        return zipf_population(
            workload.flows,
            exponent=workload.zipf_exponent,
            tenants=workload.tenants,
        )
    return uniform_population(workload.flows, tenants=workload.tenants)


class RunHandle:
    """A built scenario: simulator, server, pods and attached sources.

    Scenario functions are free to wire extra machinery (fault
    injectors, limiters, bespoke sinks) onto the handle before calling
    :meth:`run`; everything reachable from ``sim``/``rngs``/``server``
    is theirs to extend.
    """

    def __init__(self, spec, sim, rngs, server, pods, sources, migration=None):
        self.spec = spec
        self.sim = sim
        self.rngs = rngs
        self.server = server
        self.pods = pods            # {name: GwPodRuntime}, spec order
        self.sources = list(sources)
        # The MigrationController when spec.migration is set; it swaps
        # the migrated pod's entry in self.pods in place on restore.
        self.migration = migration
        # The SimCheckpointer when spec.checkpoint_every_ns is set
        # (attached by build() after sources exist).
        self.checkpointer = None
        # The TimeSeriesRecorder when spec.timeseries_every_ns is set.
        self.telemetry = None
        # The TopologyRuntime when spec.servers is set.
        self.topology = None

    @property
    def pod(self):
        """The first (often only) pod."""
        return next(iter(self.pods.values()))

    def capacity_pps(self, pod_name=None):
        """Nominal packet capacity of one pod (see ``WorkloadSpec.load``)."""
        all_pods = self.spec.all_pods
        spec = all_pods[0] if pod_name is None else next(
            pod for pod in all_pods if pod.name == pod_name
        )
        if spec.per_core_pps is not None:
            return spec.per_core_pps * spec.data_cores
        pod = self.pods[spec.name]
        return pod.expected_capacity_mpps() * 1e6

    def run(self, duration_ns=None):
        """Advance the clock by ``duration_ns`` (default: the spec's)."""
        span = self.spec.duration_ns if duration_ns is None else duration_ns
        self.sim.run_until(self.sim.now + span)
        return self

    def run_for(self, duration_ns):
        """Alias kept for :class:`ScaledPod` compatibility."""
        return self.run(duration_ns)

    def restore_checkpoint(self, snapshot):
        """Adopt a ``SimCheckpoint`` on a freshly built handle.

        After this the handle behaves as if it had simulated up to the
        snapshot's instant: ``run(spec.duration_ns - sim.now)`` finishes
        the shard and :meth:`report` is byte-identical to a from-zero
        run (the checkpoint invariant test drives this at random
        simtimes).

        Restore order: clock, rng streams (in place -- components keep
        their bindings), pod state, then every pending event re-created
        in ``(time, seq)`` order so same-timestamp ties replay exactly.
        Only valid on a handle that has not run yet.
        """
        from repro.controlplane.snapshot import CHECKPOINT_SCHEMA_VERSION

        if self.checkpointer is None:
            raise ValueError(
                f"scenario {self.spec.name!r} has no checkpoint cadence "
                "(set spec.checkpoint_every_ns)"
            )
        version = snapshot.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema {version!r} is not "
                f"{CHECKPOINT_SCHEMA_VERSION}"
            )
        self.sim.restore_clock(snapshot["sim"])
        self.rngs.restore(snapshot["rngs"])
        for name, pod in self.pods.items():
            pod.restore_state(snapshot["pods"][name])
        rearms = list(self.checkpointer.restore(snapshot))
        if self.telemetry is not None:
            telemetry_snapshot = snapshot.get("telemetry")
            if telemetry_snapshot is None:
                raise ValueError(
                    f"scenario {self.spec.name!r} has windowed telemetry "
                    "armed but the checkpoint carries no telemetry section"
                )
            rearms.extend(self.telemetry.restore(telemetry_snapshot))
        for source, source_snapshot in zip(self.sources, snapshot["sources"]):
            rearms.extend(source.restore(source_snapshot))
        rearms.sort(key=lambda entry: (entry[0], entry[1]))
        for _time, _seq, rearm in rearms:
            rearm()
        return self

    def report(self):
        """The deterministic per-run report (the fleet's merge unit)."""
        pods = {}
        for name, pod in self.pods.items():
            entry = {
                "transmitted": pod.transmitted(),
                "counters": dict(sorted(pod.counters.snapshot().items())),
                "outcomes": dict(sorted(pod.outcomes.items())),
                "latency": pod.latency_histogram.to_dict(),
            }
            if pod.config.mode == "plb":
                stats = pod.reorder_stats
                entry["reorder"] = {
                    "in_order": stats.in_order,
                    "best_effort": stats.best_effort,
                    "hol_events": stats.hol_events,
                }
            pods[name] = entry
        report = {
            "scenario": self.spec.name,
            "seed": self.spec.seed,
            "duration_ns": self.spec.duration_ns,
            "sim_ns": self.sim.now,
            "events": self.sim.events_processed,
            "pods": pods,
        }
        # Only when armed: reports of telemetry-less scenarios must stay
        # byte-identical to pre-telemetry output.
        if self.telemetry is not None:
            report["timeseries"] = self.telemetry.series()
        if self.migration is not None:
            report["migration"] = self.migration.plan.to_dict()
        # Topology sections likewise appear only on topology runs.
        if self.topology is not None:
            report["uplink"] = self._uplink_section()
            report["servers"] = self._servers_section()
            report["tiers"] = self._tiers_section()
        return report

    def _uplink_section(self):
        uplink = self.topology.uplink
        return {
            "members": [name for name, _sink in uplink.members],
            "pinned_flows": uplink.pinned_flows,
            "counters": dict(sorted(uplink.counters.snapshot().items())),
        }

    def _servers_section(self):
        servers = {}
        for name, runtime in self.topology.servers.items():
            entry = {
                "pods": list(runtime.pods),
                "dispatch": dict(
                    sorted(runtime.dispatch.counters.snapshot().items())
                ),
            }
            if runtime.dpu is not None:
                entry["dpu"] = {
                    "occupancy": runtime.dpu.occupancy,
                    "counters": dict(
                        sorted(runtime.dpu.counters.snapshot().items())
                    ),
                }
            servers[name] = entry
        return servers

    def _tiers_section(self):
        """AZ-wide per-tier rollup: the DPU tier vs the host pipeline."""
        host_packets = sum(pod.transmitted() for pod in self.pods.values())
        tiers = {"host": {"packets": host_packets}}
        runtimes = [
            runtime for runtime in self.topology.servers.values()
            if runtime.dpu is not None
        ]
        if runtimes:
            from repro.metrics.histogram import LatencyHistogram

            fast = LatencyHistogram(seed=self.spec.seed)
            counters = {}
            occupancy = 0
            for runtime in runtimes:
                fast.merge(runtime.dpu.latency_histogram)
                occupancy += runtime.dpu.occupancy
                for key, value in runtime.dpu.counters.snapshot().items():
                    counters[key] = counters.get(key, 0) + value
            tiers["dpu"] = {
                "packets": counters.get("fast_forwards", 0),
                "occupancy": occupancy,
                "counters": dict(sorted(counters.items())),
                "latency": fast.to_dict(),
            }
        return tiers


def build(spec, sim=None, rngs=None, pod_extras=None):
    """Construct the deployment a :class:`ScenarioSpec` describes.

    Parameters:
        spec: the scenario.
        sim / rngs: pass to embed the scenario in an existing simulation
            (defaults: fresh ``Simulator`` and ``RngRegistry(spec.seed)``).
        pod_extras: ``{pod_name: {kwarg: object}}`` of live-object
            :class:`PodConfig` kwargs (``rate_limiter``, ``jitter``, ...)
            that plain-data specs cannot carry.  Handles built with
            extras run fine but their specs no longer describe the full
            deployment -- keep extras out of sweep-bound scenarios.
    """
    sim = sim if sim is not None else Simulator()
    rngs = rngs if rngs is not None else RngRegistry(seed=spec.seed)
    pod_extras = pod_extras or {}

    if spec.servers:
        topology, migration, pods = _build_topology(spec, sim, rngs, pod_extras)
        # handle.server stays the first member's deployment so
        # single-server tooling (capacity probes, fault routers) keeps
        # a meaningful default target.
        server = next(iter(topology.servers.values())).server
    else:
        topology = None
        server = AlbatrossServer(sim, rngs)
        pods = {}
        for pod_spec in spec.pods:
            pods[pod_spec.name] = _build_pod(pod_spec, server, rngs, pod_extras)
        migration = None
        if spec.migration is not None:
            from repro.controlplane.migration import MigrationController

            migration = MigrationController(sim, server, spec.migration, pods)

    sources = []
    if spec.workload is not None:
        if not spec.all_pods:
            raise ValueError(f"scenario {spec.name!r} has a workload but no pods")
        sink = topology.uplink.forward if topology is not None else None
        sources.append(_attach_workload(spec, sim, rngs, pods, migration, sink))

    handle = RunHandle(spec, sim, rngs, server, pods, sources, migration=migration)
    handle.topology = topology
    if spec.timeseries_every_ns is not None:
        from repro.telemetry import TimeSeriesRecorder

        handle.telemetry = TimeSeriesRecorder(
            sim, pods, spec.timeseries_every_ns, seed=spec.seed
        )
    if spec.checkpoint_every_ns is not None:
        from repro.controlplane.snapshot import SimCheckpointer

        handle.checkpointer = SimCheckpointer(
            sim, rngs, pods, sources, spec.checkpoint_every_ns,
            recorder=handle.telemetry,
        )
    return handle


def _build_topology(spec, sim, rngs, pod_extras):
    """Construct the AZ: per-server deployments, tiers and the uplink."""
    from repro.scenarios.spec import EcmpSpec
    from repro.topology import (
        DpuPreClassifier,
        EcmpUplink,
        FlowPodDispatch,
        HotFlowPromoter,
    )

    ecmp = spec.ecmp if spec.ecmp is not None else EcmpSpec()
    pods = {}
    deployments = {}            # server name -> (AlbatrossServer, {pod runtimes})
    for server_spec in spec.servers:
        az_server = AlbatrossServer(sim, rngs)
        server_pods = {}
        for pod_spec in server_spec.pods:
            runtime = _build_pod(pod_spec, az_server, rngs, pod_extras)
            pods[pod_spec.name] = runtime
            server_pods[pod_spec.name] = runtime
        deployments[server_spec.name] = (az_server, server_pods)

    migration = None
    if spec.migration is not None:
        from repro.controlplane.migration import MigrationController

        home = next(
            server.name for server in spec.servers
            if any(pod.name == spec.migration.pod for pod in server.pods)
        )
        migration = MigrationController(
            sim, deployments[home][0], spec.migration, pods
        )

    members = []
    servers = {}
    for server_spec in spec.servers:
        az_server, server_pods = deployments[server_spec.name]
        sinks = []
        for pod_spec in server_spec.pods:
            # The migrating pod's traffic goes through the controller's
            # route() indirection: buffered during the blackout, and
            # re-resolved after the pods-dict entry swap on restore.
            if migration is not None and migration.pod_name == pod_spec.name:
                sinks.append((pod_spec.name, migration.route))
            else:
                sinks.append((pod_spec.name, server_pods[pod_spec.name].ingress))
        dispatch = FlowPodDispatch(
            server_spec.name, sinks, hash_seed=ecmp.pod_hash_seed
        )
        dpu = promoter = None
        entry = dispatch.forward
        if spec.dpu_tier is not None:
            tier = spec.dpu_tier
            dpu = DpuPreClassifier(
                sim, dispatch.forward,
                table_capacity=tier.table_capacity,
                fast_latency_ns=tier.fast_latency_ns,
                seed=spec.seed,
            )
            promoter = HotFlowPromoter(
                sim, dpu,
                threshold_pps=tier.threshold_pps,
                epoch_ns=tier.epoch_ns,
                demote_after_epochs=tier.demote_after_epochs,
                sketch_capacity=tier.sketch_capacity,
            )
            dpu.promoter = promoter
            entry = dpu.ingress
        servers[server_spec.name] = ServerRuntime(
            server_spec.name, az_server, server_pods, dispatch, dpu, promoter
        )
        members.append((server_spec.name, entry))

    uplink = EcmpUplink(
        members, hash_seed=ecmp.hash_seed, pin_flows=ecmp.pin_flows
    )
    return TopologyRuntime(uplink, servers), migration, pods


def _attach_workload(spec, sim, rngs, pods, migration=None, sink=None):
    from repro.workloads.generators import CbrSource
    from repro.workloads.microburst import MicroburstSource

    workload = spec.workload
    target_spec = spec.all_pods[0]
    if sink is None:
        target = pods[target_spec.name]
        # Traffic aimed at a migrating pod goes through the controller's
        # route() indirection: buffered during the blackout, never dropped.
        if migration is not None and migration.pod_name == target_spec.name:
            sink = migration.route
        else:
            sink = target.ingress
    population = _build_population(workload)
    if workload.rate_pps is not None:
        rate = workload.rate_pps
    elif spec.servers:
        # Topology runs spread load over the whole AZ: the offered rate
        # is a fraction of the summed per-pod capacity.
        capacity = 0
        for pod_spec in spec.all_pods:
            if pod_spec.per_core_pps is not None:
                capacity += pod_spec.per_core_pps * pod_spec.data_cores
            else:
                capacity += pods[pod_spec.name].expected_capacity_mpps() * 1e6
        rate = int(capacity * workload.load)
    else:
        if target_spec.per_core_pps is not None:
            capacity = target_spec.per_core_pps * target_spec.data_cores
        else:
            capacity = pods[target_spec.name].expected_capacity_mpps() * 1e6
        rate = int(capacity * workload.load)
    stream = rngs.stream(workload.stream)
    if workload.kind == "microburst":
        burst_kwargs = {"burst_factor": workload.burst_factor}
        if workload.burst_duration_ns is not None:
            burst_kwargs["burst_duration_ns"] = workload.burst_duration_ns
        if workload.burst_period_ns is not None:
            burst_kwargs["burst_period_ns"] = workload.burst_period_ns
        return MicroburstSource(
            sim, stream, sink, population, rate,
            size=workload.size, **burst_kwargs,
        )
    return CbrSource(
        sim, stream, sink, population, rate, size=workload.size
    )
