"""Deterministic fault injection and graceful-degradation scenarios.

The paper's production story rests on surviving failures: FPGA watchdog
resets, GW-pod crashes rescheduled in ~10 s, BGP/BFD detecting peer loss
within three probe intervals.  This package turns those claims into
testable machinery:

* :mod:`repro.faults.plan` -- typed faults (:class:`FaultKind`) with an
  injection time, duration and target, composed into a
  :class:`FaultPlan`; plus a seeded random chaos generator.
* :mod:`repro.faults.injector` -- :class:`FaultInjector` drives a plan on
  the simulator clock, flips the fault hooks wired into the NIC, CPU,
  BGP and container layers, and records per-fault recovery metrics
  (detection latency, blackout drops, time-to-steady-state).
* :mod:`repro.faults.scenarios` -- named end-to-end scenarios runnable as
  ``python -m repro faults <name>``.
"""

from repro.faults.injector import FaultInjector, FaultRecord, FaultTargets, SteadyStateTracker
from repro.faults.plan import Fault, FaultKind, FaultPlan

__all__ = [
    "Fault",
    "FaultKind",
    "FaultPlan",
    "FaultInjector",
    "FaultRecord",
    "FaultTargets",
    "SteadyStateTracker",
]
