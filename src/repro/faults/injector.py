"""The fault injector: drives a :class:`~repro.faults.plan.FaultPlan`.

The injector owns three jobs:

1. **Injection** -- at each fault's ``at_ns`` it flips the corresponding
   hook on the bound targets (NIC stall flag, pod crash, core failure,
   limiter SRAM scrub, BFD link state) and, when the fault has a
   duration, schedules the raw condition to clear.
2. **Bookkeeping** -- every fault gets a :class:`FaultRecord`; detection
   and recovery are reported back by whichever subsystem noticed (the
   FPGA watchdog's ``on_reset``, a BFD ``on_down``, a scenario's
   reschedule logic) via :meth:`FaultInjector.note_detected` /
   :meth:`note_recovered`.
3. **Metrics** -- records are flattened into a
   :class:`~repro.metrics.counters.CounterSet` (``finalize``) so fault
   outcomes flow through the same metrics layer as everything else.

Steady-state recovery is measured by :class:`SteadyStateTracker`, which
samples a cumulative packet counter in fixed windows and marks the first
post-fault window whose rate is back within tolerance of the pre-fault
baseline.
"""

from repro.faults.plan import FaultKind
from repro.metrics.counters import CounterSet
from repro.metrics.summary import mean
from repro.sim.units import MS


class FaultTargets:
    """The injectable surface of one simulated deployment.

    Any attribute may be left ``None``; injecting a fault whose target is
    unbound raises, so plans stay honest about what they exercise.

    Attributes:
        nic: :class:`~repro.core.nic.NicPipeline` (FPGA_STALL).
        pod: :class:`~repro.core.gateway.GwPodRuntime` (POD_CRASH).
        cores: list of :class:`~repro.cpu.core.CpuCore` (CORE_STALL).
        limiter: :class:`~repro.core.ratelimit.TwoStageRateLimiter`
            (LIMITER_SRAM).
        link: :class:`~repro.bgp.bfd.BfdLink` (LINK_FLAP).
    """

    def __init__(self, nic=None, pod=None, cores=None, limiter=None, link=None):
        self.nic = nic
        self.pod = pod
        self.cores = list(cores) if cores is not None else None
        self.limiter = limiter
        self.link = link


class FaultRecord:
    """Outcome bookkeeping for one injected fault."""

    __slots__ = (
        "fault",
        "injected_ns",
        "detected_ns",
        "recovered_ns",
        "steady_state_ns",
        "blackout_drops",
        "blackout_reordered",
        "notes",
    )

    def __init__(self, fault, injected_ns):
        self.fault = fault
        self.injected_ns = injected_ns
        self.detected_ns = None
        self.recovered_ns = None
        self.steady_state_ns = None
        self.blackout_drops = 0
        self.blackout_reordered = 0
        self.notes = {}

    @property
    def kind(self):
        return self.fault.kind

    @property
    def detection_latency_ns(self):
        if self.detected_ns is None:
            return None
        return self.detected_ns - self.injected_ns

    @property
    def time_to_steady_state_ns(self):
        if self.steady_state_ns is None:
            return None
        return self.steady_state_ns - self.injected_ns

    def __repr__(self):
        return (
            f"<FaultRecord {self.kind.value} injected={self.injected_ns} "
            f"detected={self.detected_ns} steady={self.steady_state_ns}>"
        )


class SteadyStateTracker:
    """Detects throughput returning to the pre-fault baseline.

    Samples ``count_fn()`` (a cumulative packet count) every
    ``window_ns``.  When a record is armed, the baseline is the mean
    per-window delta of the last ``baseline_windows`` full windows before
    injection; the record's ``steady_state_ns`` is the end of the first
    later window whose delta is within ``tolerance`` of that baseline.
    """

    def __init__(self, sim, count_fn, window_ns=20 * MS, tolerance=0.05,
                 baseline_windows=3):
        self.sim = sim
        self.count_fn = count_fn
        self.window_ns = window_ns
        self.tolerance = tolerance
        self.baseline_windows = baseline_windows
        self.deltas = []  # (window_end_ns, delta)
        self._last_count = count_fn()
        self._waiting = []  # (record, baseline_rate)
        self._task = sim.every(window_ns, self._sample)

    def arm(self, record):
        """Start watching for this record's return to steady state.

        The baseline comes from the last windows that ended *before* the
        fault was injected -- the most recent windows are the blackout
        itself and would make any trickle look healthy.
        """
        pre_fault = [
            delta for end, delta in self.deltas if end <= record.injected_ns
        ]
        recent = pre_fault[-self.baseline_windows:]
        baseline = mean(recent) if recent else 0.0
        record.notes["baseline_per_window"] = baseline
        self._waiting.append((record, baseline))

    def _sample(self):
        count = self.count_fn()
        delta = count - self._last_count
        self._last_count = count
        now = self.sim.now
        self.deltas.append((now, delta))
        still_waiting = []
        for record, baseline in self._waiting:
            # Only windows that started after injection count; a window
            # straddling the fault mixes healthy and blacked-out traffic.
            if (
                now - self.window_ns >= record.injected_ns
                and delta >= (1.0 - self.tolerance) * baseline
            ):
                record.steady_state_ns = now
            else:
                still_waiting.append((record, baseline))
        self._waiting = still_waiting

    def stop(self):
        self._task.cancel()


class FaultInjector:
    """Schedules a plan's faults onto the simulator and records outcomes."""

    def __init__(self, sim, targets=None, metrics=None, tracker=None):
        self.sim = sim
        self.targets = targets if targets is not None else FaultTargets()
        self.metrics = metrics if metrics is not None else CounterSet()
        self.tracker = tracker
        self.records = []
        self._active = {}  # FaultKind -> most recent un-recovered record
        self._handlers = {
            FaultKind.FPGA_STALL: self._inject_fpga_stall,
            FaultKind.POD_CRASH: self._inject_pod_crash,
            FaultKind.CORE_STALL: self._inject_core_stall,
            FaultKind.LIMITER_SRAM: self._inject_limiter_sram,
            FaultKind.LINK_FLAP: self._inject_link_flap,
        }

    def load(self, plan):
        """Schedule every fault in ``plan``; returns self for chaining."""
        for fault in plan:
            self.sim.schedule_at(fault.at_ns, self._inject, fault)
        return self

    # -- reporting hooks (called by watchdogs / scenarios) ---------------

    def active_record(self, kind):
        return self._active.get(kind)

    def note_detected(self, kind, now=None):
        """A recovery mechanism noticed the active fault of ``kind``."""
        record = self._active.get(kind)
        if record is not None and record.detected_ns is None:
            record.detected_ns = now if now is not None else self.sim.now
        return record

    def note_recovered(self, kind, now=None):
        """The active fault of ``kind`` has been repaired."""
        record = self._active.pop(kind, None)
        if record is not None and record.recovered_ns is None:
            record.recovered_ns = now if now is not None else self.sim.now
            if record.detected_ns is None:
                # Repair implies detection at the latest by now.
                record.detected_ns = record.recovered_ns
            if self.tracker is not None:
                self.tracker.arm(record)
        return record

    # -- injection --------------------------------------------------------

    def _inject(self, fault):
        record = FaultRecord(fault, self.sim.now)
        fault.record = record
        self.records.append(record)
        self._active[fault.kind] = record
        self.metrics.incr(f"faults.{fault.kind.value}.injected")
        self._handlers[fault.kind](fault, record)

    def _require(self, attribute, kind):
        value = getattr(self.targets, attribute)
        if value is None:
            raise ValueError(
                f"fault {kind.value} needs targets.{attribute}, which is unbound"
            )
        return value

    def _inject_fpga_stall(self, fault, record):
        nic = self._require("nic", fault.kind)
        nic.set_fpga_stalled(True)
        if fault.duration_ns:
            # Safety net: if no watchdog repairs the pipeline first, the
            # stall clears itself (with the mandatory state-dropping
            # reset) when the raw condition ends.
            self.sim.schedule(fault.duration_ns, self._clear_fpga_stall, record)

    def _clear_fpga_stall(self, record):
        nic = self.targets.nic
        if nic.fpga_stalled:
            nic.recover_fpga()
            self.note_recovered(FaultKind.FPGA_STALL)
        elif record.recovered_ns is None:
            # A watchdog already reset the pipeline; close the record.
            self.note_recovered(FaultKind.FPGA_STALL)

    def _inject_pod_crash(self, fault, record):
        pod = self._require("pod", fault.kind)
        pod.crash()
        if self.targets.link is not None:
            # The pod's BFD adjacency dies with the container; the peer
            # detects the crash within multiplier * interval.
            self.targets.link.set_down()
        if fault.duration_ns:
            # Standalone (chaos) mode: the container runtime restarts the
            # pod in place after ``duration``.  Scenario mode passes
            # duration None and reschedules through the fleet scheduler.
            self.sim.schedule(fault.duration_ns, self._restart_pod, record)

    def _restart_pod(self, record):
        self.targets.pod.restore()
        if self.targets.link is not None:
            self.targets.link.set_up()
        self.note_recovered(FaultKind.POD_CRASH)

    def _inject_core_stall(self, fault, record):
        cores = self._require("cores", fault.kind)
        index = fault.target if fault.target is not None else 0
        core = cores[index % len(cores)]
        record.notes["core_id"] = core.core_id
        core.fail(fault.duration_ns)
        if fault.duration_ns:
            self.sim.schedule(
                fault.duration_ns, self.note_recovered, FaultKind.CORE_STALL
            )

    def _inject_limiter_sram(self, fault, record):
        limiter = self._require("limiter", fault.kind)
        # An SRAM scrub raises a synchronous ECC event: detection is
        # immediate even though re-convergence (recovery) is not.
        self.note_detected(fault.kind)
        wiped = limiter.corrupt_sram()
        record.notes["buckets_wiped"] = wiped
        self.metrics.incr("faults.limiter_sram.buckets_wiped", wiped)
        # The corruption itself is instantaneous; recovery means the
        # refilled buckets have drained back to enforcement, which the
        # scenario detects from the first post-reset drop decision.

    def _inject_link_flap(self, fault, record):
        link = self._require("link", fault.kind)
        link.set_down()
        if fault.duration_ns:
            self.sim.schedule(fault.duration_ns, self._raise_link, record)

    def _raise_link(self, record):
        self.targets.link.set_up()
        record.notes["probes_lost"] = self.targets.link.probes_lost
        # Recovery (sessions back UP) is reported by the BFD on_up hook.

    # -- metrics -----------------------------------------------------------

    def finalize(self):
        """Flatten every record into the metrics CounterSet; returns it.

        Counter names are ``faults.<kind>.<index>.<field>`` with times in
        integer nanoseconds, so a snapshot is deterministic and
        byte-comparable across runs.
        """
        for index, record in enumerate(self.records):
            prefix = f"faults.{record.kind.value}.{index}"
            self.metrics.incr(f"{prefix}.injected_ns", record.injected_ns)
            if record.detection_latency_ns is not None:
                self.metrics.incr(
                    f"{prefix}.detection_latency_ns", record.detection_latency_ns
                )
            if record.time_to_steady_state_ns is not None:
                self.metrics.incr(
                    f"{prefix}.time_to_steady_state_ns",
                    record.time_to_steady_state_ns,
                )
            self.metrics.incr(f"{prefix}.blackout_drops", record.blackout_drops)
            self.metrics.incr(
                f"{prefix}.blackout_reordered", record.blackout_reordered
            )
        return self.metrics
