"""Typed fault descriptions and seed-reproducible fault plans.

A :class:`Fault` is one scheduled failure: what breaks (:class:`FaultKind`),
when (``at_ns``), for how long (``duration_ns``; 0 means instantaneous,
``None`` means until something else repairs it) and against which target
(an index or name interpreted per kind).  A :class:`FaultPlan` is an
ordered collection of faults; :meth:`FaultPlan.chaos` draws one at random
from a seeded stream, so two chaos runs with the same seed inject the
same faults at the same instants.
"""

import enum

from repro.sim.units import MS


class FaultKind(enum.Enum):
    """The failure modes the paper's platform must survive."""

    FPGA_STALL = "fpga_stall"      # pipeline freeze -> watchdog reset (§4.1)
    POD_CRASH = "pod_crash"        # container dies -> reschedule (~10 s, §7)
    CORE_STALL = "core_stall"      # data core offline -> PLB sprays around it
    LIMITER_SRAM = "limiter_sram"  # SRAM scrub resets token buckets (§4.3)
    LINK_FLAP = "link_flap"        # BFD down/up within 3 probe intervals


class Fault:
    """One scheduled failure.

    Attributes:
        kind: a :class:`FaultKind`.
        at_ns: injection time on the simulator clock.
        duration_ns: how long the failure condition holds.  ``0`` marks an
            instantaneous corruption (e.g. an SRAM scrub); ``None`` means
            the fault persists until an external actor repairs it (e.g. a
            pod crash awaiting reschedule).
        target: kind-specific selector -- a core index for CORE_STALL,
            otherwise usually ``None`` (the bound target in
            :class:`~repro.faults.injector.FaultTargets` is used).
        params: optional dict of extra knobs for the injector.
    """

    __slots__ = ("kind", "at_ns", "duration_ns", "target", "params", "record")

    def __init__(self, kind, at_ns, duration_ns=0, target=None, params=None):
        if at_ns < 0:
            raise ValueError(f"fault time must be non-negative: {at_ns}")
        if duration_ns is not None and duration_ns < 0:
            raise ValueError(f"fault duration must be non-negative: {duration_ns}")
        self.kind = kind
        self.at_ns = int(at_ns)
        self.duration_ns = None if duration_ns is None else int(duration_ns)
        self.target = target
        self.params = dict(params) if params else {}
        self.record = None  # set by the injector

    def __repr__(self):
        span = "∞" if self.duration_ns is None else f"{self.duration_ns}ns"
        return f"<Fault {self.kind.value} @{self.at_ns}ns for {span}>"


class FaultPlan:
    """An ordered, reproducible schedule of faults."""

    def __init__(self, faults=()):
        self.faults = sorted(faults, key=lambda fault: fault.at_ns)

    def add(self, fault):
        self.faults.append(fault)
        self.faults.sort(key=lambda entry: entry.at_ns)
        return fault

    def __len__(self):
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def kinds(self):
        return [fault.kind for fault in self.faults]

    @classmethod
    def chaos(
        cls,
        rng,
        duration_ns,
        kinds=None,
        count=4,
        min_gap_ns=50 * MS,
        max_fault_ns=100 * MS,
        core_count=1,
    ):
        """Draw a random plan from a seeded stream (deterministic chaos).

        ``count`` faults are spread over ``[min_gap_ns, duration_ns)``
        with at least ``min_gap_ns`` between injections; each fault's
        duration is uniform in ``[10 ms, max_fault_ns]``.  CORE_STALL
        faults pick a core index below ``core_count``.  Identical
        ``rng`` seeds yield identical plans.
        """
        kinds = list(kinds) if kinds is not None else list(FaultKind)
        if not kinds:
            raise ValueError("chaos needs at least one fault kind")
        window = duration_ns - min_gap_ns * (count + 1)
        if window < 0:
            raise ValueError("duration too short for the requested fault count")
        offsets = sorted(rng.randrange(max(1, window)) for _ in range(count))
        faults = []
        for index, offset in enumerate(offsets):
            kind = rng.choice(kinds)
            at_ns = min_gap_ns * (index + 1) + offset
            duration_ns = rng.randrange(10 * MS, max(10 * MS + 1, max_fault_ns))
            target = None
            if kind is FaultKind.CORE_STALL:
                target = rng.randrange(core_count)
            if kind is FaultKind.LIMITER_SRAM:
                duration_ns = 0  # instantaneous corruption
            faults.append(Fault(kind, at_ns, duration_ns, target=target))
        return cls(faults)
