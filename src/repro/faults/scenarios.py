"""Named graceful-degradation scenarios: ``python -m repro faults <name>``.

Each scenario builds a small deployment, injects one fault (or, for
``chaos``, a seeded random plan) and reports how the platform degraded
and recovered.  Every report carries the same three headline metrics --
``detection_latency_ms``, ``blackout_drops`` and
``time_to_steady_state_ms`` -- plus scenario-specific detail, and is
fully deterministic for a given seed: running a scenario twice with the
same seed renders byte-identical output.

Scenarios:

* ``pod-crash-reschedule`` -- a GW pod dies; BFD detects it in 3 x 50 ms,
  the proxy withdraws its route, the fleet scheduler re-places the pod on
  another server and the replacement advertises after the container
  prepare delay (§7's ~10 s, scaled down in ``--quick`` mode).
* ``core-stall-plb-vs-rss`` -- one data core stalls under identical load
  in a PLB pod and an RSS pod.  PLB sprays around the dead doorbell; RSS
  keeps hashing flows into the dead core's queue until it overflows.
* ``bfd-flap`` -- a link flap against paper-faithful BFD timers
  (50 ms x 3): detection within three probe intervals, three-way
  handshake recovery.
* ``limiter-reset`` -- an SRAM scrub wipes the two-stage rate limiter's
  token buckets: a transient over-admission burst, then re-convergence
  and heavy-hitter re-promotion.
* ``chaos`` -- a seeded random plan over a full pod (FPGA watchdog, BFD,
  limiter all armed); same seed, same faults, same metrics.
"""

from repro.bgp.bfd import BfdLink
from repro.container.elasticity import ElasticityManager
from repro.container.scheduler import FleetScheduler, ServerSpec
from repro.core.gateway import PodConfig
from repro.core.ratelimit import TwoStageRateLimiter
from repro.core.watchdog import FpgaWatchdog
from repro.faults.injector import FaultInjector, FaultTargets, SteadyStateTracker
from repro.faults.plan import Fault, FaultKind, FaultPlan
from repro.metrics.counters import CounterSet
from repro.scenarios import PodSpec, ScenarioSpec, build
from repro.sim.rng import RngRegistry
from repro.sim.units import MS, SECOND, US
from repro.workloads.generators import CbrSource, uniform_population


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _ms(ns):
    """Nanoseconds -> float milliseconds (or 'unreached')."""
    if ns is None:
        return "unreached"
    return ns / MS


class ScenarioReport:
    """Ordered key/value report with deterministic rendering."""

    def __init__(self, name, seed):
        self.name = name
        self.seed = seed
        self.values = {}
        self._order = []
        self.records = []
        self.metrics = None

    def add(self, key, value):
        if key not in self.values:
            self._order.append(key)
        self.values[key] = value

    def get(self, key):
        return self.values.get(key)

    def render(self):
        lines = [f"scenario: {self.name} (seed {self.seed})"]
        lines.extend(f"  {key}: {_fmt(self.values[key])}" for key in self._order)
        return "\n".join(lines)

    def to_dict(self):
        return {
            "scenario": self.name,
            "seed": self.seed,
            **{key: self.values[key] for key in self._order},
        }

    def rows(self):
        """The common one-row-per-report shape (see ``format_table``)."""
        return [self.to_dict()]


def _add_headline(report, record):
    """The three metrics every scenario must report."""
    report.add("detection_latency_ms", _ms(record.detection_latency_ns))
    report.add("blackout_drops", record.blackout_drops)
    report.add("time_to_steady_state_ms", _ms(record.time_to_steady_state_ns))


# ---------------------------------------------------------------------------
# pod-crash-reschedule
# ---------------------------------------------------------------------------

def pod_crash_reschedule(seed=42, quick=False):
    """GW pod crash -> BFD detect -> withdraw -> reschedule -> re-announce."""
    rate_pps = 20_000 if quick else 10_000
    crash_at = 200 * MS if quick else 300 * MS
    prepare_ns = 150 * MS if quick else 10 * SECOND
    window_ns = 20 * MS if quick else 250 * MS
    run_ns = crash_at + 300 * MS + prepare_ns + (350 * MS if quick else 2 * SECOND)

    handle = build(ScenarioSpec(
        name="pod-crash-reschedule",
        pods=(PodSpec(name="gw-a", data_cores=4),),
        duration_ns=run_ns,
        seed=seed,
    ))
    sim, rngs, server = handle.sim, handle.rngs, handle.server
    pod = handle.pods["gw-a"]

    fleet = FleetScheduler([ServerSpec("server-0"), ServerSpec("server-1")])
    fleet.place_pod("gw-a", cores=6)

    targets = FaultTargets(pod=pod)
    tracker = SteadyStateTracker(
        sim,
        lambda: sum(p.transmitted() for p in server.pods.values()),
        window_ns=window_ns,
    )
    injector = FaultInjector(sim, targets, tracker=tracker)

    # The "router": traffic follows the currently-announced pod.  While
    # no route is announced (or the announced pod is dead) packets
    # blackhole, which is exactly the blackout the metrics must capture.
    router = {"target": pod}

    def route(packet):
        target = router["target"]
        if target is None or target.crashed:
            record = injector.active_record(FaultKind.POD_CRASH)
            if record is not None:
                record.blackout_drops += 1
            return
        target.ingress(packet)

    population = uniform_population(128, tenants=8)
    CbrSource(sim, rngs.stream("traffic"), route, population, rate_pps=rate_pps)

    def prepare(name):
        server.add_pod(PodConfig(name=name, data_cores=4))

    def advertise(name):
        router["target"] = server.pods[name]
        injector.note_recovered(FaultKind.POD_CRASH)

    def withdraw(_name):
        router["target"] = None

    elasticity = ElasticityManager(
        sim,
        prepare_fn=prepare,
        validate_fn=lambda name: True,
        advertise_fn=advertise,
        withdraw_fn=withdraw,
        prepare_ns=prepare_ns,
    )

    recovery = {"started": False}

    def on_bfd_down(_session):
        record = injector.note_detected(FaultKind.POD_CRASH)
        if record is None or recovery["started"]:
            return
        recovery["started"] = True
        fleet.reschedule_pod("gw-a", exclude_servers=("server-0",))
        elasticity.start_replacement("gw-a", "gw-a-r")

    link = BfdLink(sim, on_down=on_bfd_down)
    targets.link = link

    injector.load(FaultPlan([Fault(FaultKind.POD_CRASH, crash_at, duration_ns=None)]))
    handle.run()

    report = ScenarioReport("pod-crash-reschedule", seed)
    report.records = injector.records
    report.metrics = injector.finalize()
    record = injector.records[0]
    _add_headline(report, record)
    report.add("recovery_latency_ms", _ms(
        None if record.recovered_ns is None
        else record.recovered_ns - record.injected_ns
    ))
    report.add("bfd_detect_budget_ms", _ms(link.a.detect_time_ns))
    report.add("bfd_down_events", link.a.down_events + link.b.down_events)
    new_server, new_node = fleet.placements["gw-a"]
    report.add("rescheduled_to", f"{new_server}/numa{new_node}")
    report.add("pod_prepare_ms", _ms(prepare_ns))
    report.add("delivered_total", sum(p.transmitted() for p in server.pods.values()))
    return report


# ---------------------------------------------------------------------------
# core-stall-plb-vs-rss
# ---------------------------------------------------------------------------

def core_stall_plb_vs_rss(seed=42, quick=False):
    """Stall one data core under PLB and RSS; compare the degradation."""
    rate_pps = 20_000 if quick else 40_000
    stall_at = 100 * MS if quick else 300 * MS
    stall_ns = 200 * MS if quick else 500 * MS
    window_ns = 20 * MS if quick else 50 * MS
    run_ns = stall_at + stall_ns + (200 * MS if quick else 700 * MS)

    handle = build(ScenarioSpec(
        name="core-stall-plb-vs-rss",
        pods=(
            PodSpec(name="plb-pod", data_cores=4, mode="plb", rx_capacity=64),
            PodSpec(name="rss-pod", data_cores=4, mode="rss", rx_capacity=64),
        ),
        duration_ns=run_ns,
        seed=seed,
    ))
    sim, rngs = handle.sim, handle.rngs
    pods = {"plb": handle.pods["plb-pod"], "rss": handle.pods["rss-pod"]}

    population = uniform_population(128, tenants=8)
    injectors, trackers, marks = {}, {}, {}
    # sorted: this loop schedules capture events, so iteration order is
    # event order ("plb" < "rss" matches the literal above).
    for mode, pod in sorted(pods.items()):
        trackers[mode] = SteadyStateTracker(
            sim, pod.transmitted, window_ns=window_ns
        )
        injectors[mode] = FaultInjector(
            sim, FaultTargets(cores=pod.cores), tracker=trackers[mode]
        )
        injectors[mode].load(
            FaultPlan([Fault(FaultKind.CORE_STALL, stall_at, stall_ns, target=1)])
        )
        CbrSource(
            sim, rngs.stream(f"traffic.{mode}"), pod.ingress, population,
            rate_pps=rate_pps,
        )
        marks[mode] = {}

        def capture(mode=mode, key="start"):
            marks[mode][key] = pods[mode].transmitted()

        sim.schedule_at(stall_at, capture, mode, "start")
        sim.schedule_at(stall_at + stall_ns, capture, mode, "end")

    # The FPGA notices the dead doorbell on its next poll (~10 us) and
    # starts spraying around the core; RSS has no such signal -- its
    # record is only closed (detection backfilled) when the core heals.
    sim.schedule_at(
        stall_at + 10 * US, injectors["plb"].note_detected, FaultKind.CORE_STALL
    )

    handle.run()

    report = ScenarioReport("core-stall-plb-vs-rss", seed)
    for mode, pod in pods.items():
        record = injectors[mode].records[0]
        record.blackout_drops = (
            pod.counters.get("rx_queue_drops") + pod.nic.plb.dead_core_drops
        )
        report.records.append(record)
    _add_headline(report, injectors["plb"].records[0])
    for mode, pod in pods.items():
        record = injectors[mode].records[0]
        delivered = marks[mode].get("end", 0) - marks[mode].get("start", 0)
        report.add(f"{mode}_detection_latency_ms", _ms(record.detection_latency_ns))
        report.add(f"{mode}_delivered_during_stall", delivered)
        report.add(f"{mode}_rx_queue_drops", pod.counters.get("rx_queue_drops"))
        report.add(
            f"{mode}_time_to_steady_state_ms", _ms(record.time_to_steady_state_ns)
        )
    report.add("offered_during_stall", int(rate_pps * stall_ns / SECOND))
    report.metrics = injectors["plb"].finalize()
    injectors["rss"].finalize()
    return report


# ---------------------------------------------------------------------------
# bfd-flap
# ---------------------------------------------------------------------------

def bfd_flap(seed=42, quick=False):
    """Link flap against paper-faithful BFD timers (50 ms x 3)."""
    flap_at = 500 * MS
    flap_ns = 400 * MS
    window_ns = 250 * MS
    run_ns = 1400 * MS if quick else 2 * SECOND

    # Control-plane only: the spec declares no pods, so build() yields
    # just the seeded simulator to hang the BFD machinery on.
    handle = build(ScenarioSpec(name="bfd-flap", duration_ns=run_ns, seed=seed))
    sim = handle.sim
    targets = FaultTargets()
    injector = FaultInjector(sim, targets)

    def on_down(_session):
        injector.note_detected(FaultKind.LINK_FLAP)

    def on_up(_session):
        if targets.link is not None and targets.link.sessions_up:
            injector.note_recovered(FaultKind.LINK_FLAP)

    link = BfdLink(sim, on_down=on_down, on_up=on_up)
    targets.link = link
    injector.tracker = SteadyStateTracker(
        sim,
        lambda: link.a.probes_received + link.b.probes_received,
        window_ns=window_ns,
        tolerance=0.2,
    )

    injector.load(FaultPlan([Fault(FaultKind.LINK_FLAP, flap_at, flap_ns)]))
    handle.run()

    report = ScenarioReport("bfd-flap", seed)
    report.records = injector.records
    record = injector.records[0]
    record.blackout_drops = link.probes_lost
    report.metrics = injector.finalize()
    _add_headline(report, record)
    report.add("bfd_detect_budget_ms", _ms(link.a.detect_time_ns))
    report.add("probes_lost", link.probes_lost)
    report.add("down_events", link.a.down_events + link.b.down_events)
    report.add("recovery_latency_ms", _ms(
        None if record.recovered_ns is None
        else record.recovered_ns - (flap_at + flap_ns)
    ))
    report.add("sessions_up", link.sessions_up)
    return report


# ---------------------------------------------------------------------------
# limiter-reset
# ---------------------------------------------------------------------------

def limiter_reset(seed=42, quick=False):
    """SRAM scrub wipes the token buckets: over-admit burst, re-converge."""
    corrupt_at = 800 * MS if quick else 1200 * MS
    run_ns = corrupt_at + (700 * MS if quick else 1300 * MS)
    window_ns = 100 * MS
    heavy_vni = 7
    heavy_pps = 5_000
    background = ((11, 800), (12, 800))

    handle = build(ScenarioSpec(name="limiter-reset", duration_ns=run_ns, seed=seed))
    sim, rngs = handle.sim, handle.rngs
    limiter = TwoStageRateLimiter(
        rngs.stream("limiter.sampler"), stage1_rate_pps=2_000, stage2_rate_pps=500
    )
    counters = CounterSet()

    targets = FaultTargets(limiter=limiter)
    tracker = SteadyStateTracker(
        sim,
        lambda: limiter.decisions_dropped(),
        window_ns=window_ns,
        tolerance=0.1,
    )
    injector = FaultInjector(sim, targets, metrics=counters, tracker=tracker)

    def offer(vni):
        decision = limiter.admit(vni, sim.now)
        counters.incr(f"decision.{decision.value}")
        record = injector.active_record(FaultKind.LIMITER_SRAM)
        if record is None:
            return
        if not decision.allowed:
            # First enforcement after the scrub: buckets have drained
            # back to steady state, the limiter has re-converged.
            injector.note_recovered(FaultKind.LIMITER_SRAM)
        elif vni == heavy_vni:
            record.notes["over_admissions"] = (
                record.notes.get("over_admissions", 0) + 1
            )

    sim.every(SECOND // heavy_pps, offer, heavy_vni)
    for vni, pps in background:
        sim.every(SECOND // pps, offer, vni)

    promoted_before = {"value": 0}
    sim.schedule_at(
        corrupt_at - 1,
        lambda: promoted_before.__setitem__("value", limiter.promotions),
    )
    injector.load(FaultPlan([Fault(FaultKind.LIMITER_SRAM, corrupt_at, 0)]))
    handle.run()

    report = ScenarioReport("limiter-reset", seed)
    report.records = injector.records
    report.metrics = injector.finalize()
    record = injector.records[0]
    _add_headline(report, record)
    report.add("buckets_wiped", record.notes.get("buckets_wiped", 0))
    report.add("over_admissions", record.notes.get("over_admissions", 0))
    report.add("promotions_before_reset", promoted_before["value"])
    report.add("promotions_total", limiter.promotions)
    report.add("sram_resets", limiter.sram_resets)
    report.add("drops_total", limiter.decisions_dropped())
    return report


# ---------------------------------------------------------------------------
# chaos
# ---------------------------------------------------------------------------

def chaos(seed=42, quick=False):
    """Seeded random plan over a fully-armed pod; same seed, same output."""
    run_ns = 1500 * MS if quick else 2500 * MS
    fault_count = 4 if quick else 6
    rate_pps = 20_000

    # The live limiter (a non-scalar) rides in through pod_extras; the
    # registry is built first so the limiter's sampler stream exists
    # before build() wires the pod.
    rngs = RngRegistry(seed=seed)
    limiter = TwoStageRateLimiter(
        rngs.stream("limiter.sampler"),
        stage1_rate_pps=15_000,
        stage2_rate_pps=5_000,
    )
    handle = build(
        ScenarioSpec(
            name="chaos",
            pods=(PodSpec(name="gw-chaos", data_cores=4, rx_capacity=256),),
            duration_ns=run_ns,
            seed=seed,
        ),
        rngs=rngs,
        pod_extras={"gw-chaos": {"rate_limiter": limiter}},
    )
    sim = handle.sim
    pod = handle.pods["gw-chaos"]

    targets = FaultTargets(
        nic=pod.nic, pod=pod, cores=pod.cores, limiter=limiter
    )
    tracker = SteadyStateTracker(sim, pod.transmitted, window_ns=50 * MS)
    injector = FaultInjector(sim, targets, tracker=tracker)

    def on_down(_session):
        if pod.crashed:
            injector.note_detected(FaultKind.POD_CRASH)
        else:
            injector.note_detected(FaultKind.LINK_FLAP)

    def on_up(_session):
        if targets.link is not None and targets.link.sessions_up:
            injector.note_recovered(FaultKind.LINK_FLAP)

    link = BfdLink(sim, on_down=on_down, on_up=on_up)
    targets.link = link

    def on_reset(_watchdog):
        injector.note_detected(FaultKind.FPGA_STALL)
        injector.note_recovered(FaultKind.FPGA_STALL)

    watchdog = FpgaWatchdog(sim, pod.nic, on_reset=on_reset)

    population = uniform_population(128, tenants=8)
    CbrSource(
        sim, rngs.stream("traffic"), pod.ingress, population, rate_pps=rate_pps
    )

    plan = FaultPlan.chaos(
        rngs.stream("chaos.plan"),
        duration_ns=run_ns - 300 * MS,
        count=fault_count,
        max_fault_ns=250 * MS,
        core_count=len(pod.cores),
    )
    injector.load(plan)
    handle.run()

    report = ScenarioReport("chaos", seed)
    report.records = injector.records
    report.metrics = injector.finalize()
    report.add("faults_injected", len(injector.records))
    report.add(
        "plan", ",".join(f"{f.kind.value}@{f.at_ns // MS}ms" for f in plan)
    )
    report.add("watchdog_resets", watchdog.resets)
    report.add("bfd_down_events", link.a.down_events + link.b.down_events)
    report.add("delivered_total", pod.transmitted())
    for name, value in sorted(report.metrics.snapshot().items()):
        report.add(name, value)
    for name, value in sorted(pod.counters.snapshot().items()):
        report.add(f"pod.{name}", value)
    return report


SCENARIOS = {
    "pod-crash-reschedule": pod_crash_reschedule,
    "core-stall-plb-vs-rss": core_stall_plb_vs_rss,
    "bfd-flap": bfd_flap,
    "limiter-reset": limiter_reset,
    "chaos": chaos,
}


def scenario_descriptions():
    """{name: first docstring line} for ``inventory``."""
    return {
        name: (SCENARIOS[name].__doc__ or "").strip().splitlines()[0]
        for name in sorted(SCENARIOS)
    }


def run_scenario(name, seed=42, quick=False):
    """Run one named scenario; returns its :class:`ScenarioReport`."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(sorted(SCENARIOS))}"
        ) from None
    return scenario(seed=seed, quick=quick)
