"""Crash-safe artifact writes: tmp file + ``os.replace``.

Every JSON artifact the toolkit persists (``SWEEP_repro.json``,
``BENCH_repro.json``, the run store's manifests, shard results and
mid-shard checkpoints) goes through :func:`atomic_write_text`.  A plain
truncate-then-write leaves a half-written file behind when the process
dies mid-write -- exactly the moment a *durable* run store must survive
-- so writers stage the full payload in a sibling temp file and publish
it with the one primitive POSIX makes atomic, ``os.replace``.  Readers
therefore only ever see the old bytes or the new bytes, never a torn
artifact.
"""

import json
import os
import tempfile


def atomic_write_text(path, text, encoding="utf-8"):
    """Write ``text`` to ``path`` atomically (tmp sibling + ``os.replace``).

    The temp file lives in the destination directory so the final rename
    never crosses a filesystem boundary (cross-device renames are a copy,
    not an atomic swap).  On any failure the temp file is removed and the
    destination keeps its previous content.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path, payload, indent=2):
    """Serialize ``payload`` and write it atomically with a trailing newline."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


def read_json(path):
    """Load a JSON artifact; returns ``None`` when missing or corrupt.

    Corruption cannot happen through :func:`atomic_write_text`, but a run
    directory may carry files written by older (truncate-then-write)
    versions or a dying filesystem -- a torn shard result must read as
    "not cached", never crash the resume.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
