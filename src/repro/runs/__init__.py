"""Durable run store: crash-safe sweep artifacts and resumable runs.

Only the storage layer is imported eagerly; the query layer
(:mod:`repro.runs.query`) imports :mod:`repro.fleet.report` and is
loaded lazily by the CLI to keep ``repro.fleet`` -> ``repro.runs``
import edges acyclic.
"""

from repro.runs.atomic import atomic_write_json, atomic_write_text, read_json
from repro.runs.store import (
    MERGED_NAME,
    Run,
    RunStore,
    RunStoreError,
    canonical_bytes,
    spec_fingerprint,
)

__all__ = [
    "MERGED_NAME",
    "Run",
    "RunStore",
    "RunStoreError",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_bytes",
    "read_json",
    "spec_fingerprint",
]
