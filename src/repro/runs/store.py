"""The durable run store: ``RUNS/<run-id>/`` directories a sweep survives in.

A sweep that dies at shard 900 of 1000 used to replay from zero and
could leave a truncated ``SWEEP_repro.json`` behind.  The store gives
every sweep a per-run directory::

    RUNS/<run-id>/
      manifest.json        # run identity: sweep name, seed, shard axes + hashes
      shard-0000.json      # one completed shard result (atomic write)
      shard-0000.ckpt.json # latest mid-shard SimCheckpoint (optional)
      SWEEP_repro.json     # the merged artifact, once the run completes

Resume correctness rests on one key: the **spec fingerprint**, a SHA-256
over the canonical JSON encoding of the shard's full
:class:`~repro.scenarios.spec.ScenarioSpec` (its derived seed included).
A cached shard result is reused only when its recorded fingerprint
matches the fingerprint of the shard the sweep is asking for *now* --
so editing a scenario, changing the sweep seed, or shrinking the grid
silently invalidates exactly the stale shards and nothing else, and the
resumed merge is byte-identical to an uninterrupted run.
"""

import hashlib
import json
import os
import re
import time  # lint: disable=DET001(host-side run naming, never simulation state)

from repro.runs.atomic import atomic_write_json, atomic_write_text, read_json

MANIFEST_SCHEMA_VERSION = 1
SHARD_SCHEMA_VERSION = 1
CHECKPOINT_FILE_SCHEMA_VERSION = 1

#: Merged artifact name inside a run directory (same bytes as --output).
MERGED_NAME = "SWEEP_repro.json"

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class RunStoreError(RuntimeError):
    """A run-store operation failed (unknown run id, bad manifest, ...)."""


def canonical_bytes(payload):
    """Canonical JSON encoding (sorted keys, no whitespace) of plain data."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def spec_fingerprint(spec):
    """SHA-256 hex digest of a spec's canonical serialized form.

    The fingerprint covers the *whole* spec dict -- workload, pods,
    duration, checkpoint cadence and the shard's derived seed -- so two
    shards agree on it iff they would run the exact same simulation.
    """
    return hashlib.sha256(canonical_bytes(spec.to_dict())).hexdigest()


def _shard_name(index):
    return f"shard-{index:04d}.json"


def _checkpoint_name(index):
    return f"shard-{index:04d}.ckpt.json"


class Run:
    """One run directory: manifest plus per-shard results and checkpoints."""

    def __init__(self, root, run_id, manifest):
        self.root = root
        self.run_id = run_id
        self.manifest = manifest

    @property
    def path(self):
        return os.path.join(self.root, self.run_id)

    # -- per-shard result files -------------------------------------------

    def shard_path(self, index):
        return os.path.join(self.path, _shard_name(index))

    def checkpoint_path(self, index):
        return os.path.join(self.path, _checkpoint_name(index))

    def load_shard(self, index, fingerprint):
        """The cached shard result, or ``None`` when missing or stale.

        Stale means: unreadable/torn JSON, a schema the store does not
        know, or a fingerprint that no longer matches what the sweep
        wants to run -- all collapse to "run it again".
        """
        payload = read_json(self.shard_path(index))
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != SHARD_SCHEMA_VERSION:
            return None
        if payload.get("spec_hash") != fingerprint:
            return None
        result = payload.get("result")
        if not isinstance(result, dict) or "report" not in result:
            return None
        return result

    def record_shard(self, index, fingerprint, result):
        """Durably record one completed shard (atomic tmp + replace)."""
        atomic_write_json(self.shard_path(index), {
            "schema_version": SHARD_SCHEMA_VERSION,
            "spec_hash": fingerprint,
            "result": result,
        })
        # The shard is complete; its mid-run checkpoint is dead weight.
        self.discard_checkpoint(index)

    def load_checkpoint(self, index, fingerprint):
        """The latest mid-shard checkpoint, or ``None`` when missing/stale."""
        payload = read_json(self.checkpoint_path(index))
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != CHECKPOINT_FILE_SCHEMA_VERSION:
            return None
        if payload.get("spec_hash") != fingerprint:
            return None
        checkpoint = payload.get("checkpoint")
        return checkpoint if isinstance(checkpoint, dict) else None

    def discard_checkpoint(self, index):
        try:
            os.unlink(self.checkpoint_path(index))
        except OSError:
            pass

    # -- run-level views ---------------------------------------------------

    def completed_indices(self):
        """Indices of shards with a valid cached result (manifest order)."""
        done = []
        for entry in self.manifest.get("shards", ()):
            if self.load_shard(entry["index"], entry["spec_hash"]) is not None:
                done.append(entry["index"])
        return done

    def write_merged(self, text):
        """Publish the merged artifact inside the run directory."""
        atomic_write_text(os.path.join(self.path, MERGED_NAME), text)

    def load_merged(self):
        return read_json(os.path.join(self.path, MERGED_NAME))

    def __repr__(self):
        return f"<Run {self.run_id}: {len(self.manifest.get('shards', ()))} shard(s)>"


class RunStore:
    """The ``RUNS/`` root: creates, opens and lists run directories."""

    def __init__(self, root="RUNS"):
        self.root = root

    def _manifest_path(self, run_id):
        return os.path.join(self.root, run_id, "manifest.json")

    def default_run_id(self, name):
        """A fresh, human-sortable run id: ``<sweep>-<YYYYmmdd-HHMMSS>``.

        Wall time here is pure *host-side naming* -- it never reaches a
        report or a simulation.  Same-second collisions get a numeric
        suffix, so ids stay unique without any entropy.
        """
        stamp = time.strftime("%Y%m%d-%H%M%S")
        candidate = f"{name}-{stamp}"
        suffix = 1
        while os.path.exists(os.path.join(self.root, candidate)):
            suffix += 1
            candidate = f"{name}-{stamp}-{suffix}"
        return candidate

    def create(self, name, seed, shards, run_id=None, quick=False):
        """Create (or re-anchor) a run directory for this shard set.

        Writes the manifest recording the sweep identity and every
        shard's axes + spec fingerprint.  Calling it on an existing
        ``run_id`` rewrites the manifest to the *current* truth -- shard
        results already on disk stay, and the fingerprint check decides
        per shard whether they are still valid (that is the whole resume
        story; a stale manifest never forces a from-zero restart by
        itself, and never lets a stale result through).
        """
        run_id = run_id if run_id is not None else self.default_run_id(name)
        if not _RUN_ID_PATTERN.match(run_id):
            raise RunStoreError(
                f"bad run id {run_id!r}: use letters, digits, '.', '_' or '-'"
            )
        manifest = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": run_id,
            "sweep": name,
            "seed": seed,
            "quick": bool(quick),
            "shards": [
                {
                    "index": shard.index,
                    "axes": dict(shard.axes),
                    "spec_hash": spec_fingerprint(shard.spec),
                }
                for shard in shards
            ],
        }
        os.makedirs(os.path.join(self.root, run_id), exist_ok=True)
        atomic_write_json(self._manifest_path(run_id), manifest)
        return Run(self.root, run_id, manifest)

    def open(self, run_id):
        """Open an existing run; :class:`RunStoreError` names the miss."""
        manifest = read_json(self._manifest_path(run_id))
        if manifest is None:
            known = ", ".join(self.run_ids()) or "(none)"
            raise RunStoreError(
                f"unknown run id {run_id!r} under {self.root!r}; known runs: {known}"
            )
        if manifest.get("schema_version") != MANIFEST_SCHEMA_VERSION:
            raise RunStoreError(
                f"run {run_id!r} has manifest schema "
                f"{manifest.get('schema_version')!r}, expected "
                f"{MANIFEST_SCHEMA_VERSION}"
            )
        return Run(self.root, run_id, manifest)

    def resume(self, run_id, name, seed, shards, quick=False):
        """Re-anchor ``run_id`` for a resume of the given shard set.

        The run must exist (resuming a typo must fail loudly, not
        silently start an empty run).  The manifest is rewritten with
        the current fingerprints; cached shard results that no longer
        match are simply ignored by :meth:`Run.load_shard`.
        """
        self.open(run_id)  # raises RunStoreError with the known-run list
        return self.create(name, seed, shards, run_id=run_id, quick=quick)

    def run_ids(self):
        """Sorted ids of every directory holding a readable manifest."""
        try:
            entries = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [
            entry
            for entry in entries
            if read_json(self._manifest_path(entry)) is not None
        ]

    def runs(self):
        return [self.open(run_id) for run_id in self.run_ids()]
