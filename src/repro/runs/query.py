"""The ``python -m repro runs`` query layer.

Reads what the toolkit has accumulated on disk -- ``RUNS/<run-id>/``
directories, merged ``SWEEP_*.json`` artifacts and ``BENCH_*.json``
reports -- and renders cross-run trajectory tables with the repo's
:func:`~repro.experiments.common.format_table`.  Everything here is a
pure function of the files it reads: listing or comparing runs never
mutates the store.

Imported lazily by the CLI (it pulls in :mod:`repro.fleet.report`,
which itself imports :mod:`repro.runs` -- eager import here would be a
cycle).
"""

import os

from repro.runs.atomic import read_json
from repro.runs.store import MERGED_NAME, RunStore, RunStoreError


def list_rows(store):
    """One row per run directory: identity plus completion state."""
    rows = []
    for run in store.runs():
        manifest = run.manifest
        total = len(manifest.get("shards", ()))
        done = len(run.completed_indices())
        rows.append({
            "run": run.run_id,
            "sweep": manifest.get("sweep", "-"),
            "seed": manifest.get("seed", "-"),
            "quick": "yes" if manifest.get("quick") else "no",
            "shards": f"{done}/{total}",
            "merged": "yes" if run.load_merged() is not None else "no",
        })
    return rows


def show_rows(store, run_id):
    """Per-shard rows for one run, from its cached shard results.

    Completed shards render through the same ``_shard_row`` flattening
    the sweep artifact uses; shards not yet on disk (or stale against
    the manifest's spec hash) get a ``pending`` status row so an
    interrupted run is legible at a glance.
    """
    from repro.fleet.report import _shard_row

    run = store.open(run_id)
    rows = []
    for entry in run.manifest.get("shards", ()):
        result = run.load_shard(entry["index"], entry["spec_hash"])
        if result is None:
            row = {"shard": entry["index"]}
            row.update(entry.get("axes", {}))
            row["status"] = "pending"
        else:
            row = _shard_row(result)
            row["status"] = "done"
        rows.append(row)
    return run, rows


def show_timeseries_rows(store, run_id):
    """Windowed rows for one run's completed shards.

    Each completed shard's report contributes its ``"timeseries"``
    windows (tagged with the shard index), flattened to one row per
    (shard, window, pod) -- the same shape ``compare --timeseries``
    renders for merged artifacts.  Runs without windowed telemetry
    yield no rows.
    """
    from repro.telemetry import flatten_windows

    run = store.open(run_id)
    rows = []
    for entry in run.manifest.get("shards", ()):
        result = run.load_shard(entry["index"], entry["spec_hash"])
        if result is None:
            continue
        section = result["report"].get("timeseries")
        if section is None:
            continue
        tagged = [
            dict(window, shard=entry["index"])
            for window in section["windows"]
        ]
        rows.extend(flatten_windows(tagged))
    return run, rows


def compare_timeseries_rows(operands, store):
    """Windowed trajectory rows across sweep artifacts, operand order.

    Bench artifacts have no windows and contribute nothing; sweep
    artifacts contribute their merged window-aligned concatenation,
    labeled per operand so trajectories line up across runs.
    """
    from repro.telemetry import flatten_windows

    rows = []
    for operand in operands:
        label, kind, payload = resolve_operand(operand, store)
        if kind != "sweep":
            continue
        section = payload.get("merged", {}).get("timeseries")
        if section is None:
            continue
        rows.extend(flatten_windows(section["windows"], source=label))
    return rows


def classify_artifact(payload):
    """``"sweep"``, ``"bench"`` or ``None`` for a loaded JSON artifact."""
    if not isinstance(payload, dict):
        return None
    if "sweep" in payload and "merged" in payload:
        return "sweep"
    if "scenarios" in payload:
        return "bench"
    return None


def _sweep_rows(source, payload):
    merged = payload.get("merged", {})
    latency = merged.get("latency", {})
    return [{
        "source": source,
        "kind": "sweep",
        "name": payload.get("sweep", "-"),
        "seed": payload.get("seed", "-"),
        "shards": merged.get("shards", "-"),
        "packets": merged.get("packets", "-"),
        "events": merged.get("events", "-"),
        "p99_ns": latency.get("p99_ns", "-"),
        "mean_ns": latency.get("mean_ns", "-"),
    }]


def _bench_rows(source, payload):
    rows = []
    for name, entry in payload.get("scenarios", {}).items():
        if not isinstance(entry, dict):
            continue
        rows.append({
            "source": source,
            "kind": "bench",
            "name": name,
            "wall_s": entry.get("wall_s", "-"),
            "events": entry.get("events", "-"),
            "packets": entry.get("packets", "-"),
            "events_per_sec": entry.get("events_per_sec", "-"),
        })
    return rows


def resolve_operand(operand, store):
    """Load one ``runs compare`` operand: a run id or an artifact path.

    Run ids resolve to the run's merged artifact (raises
    :class:`RunStoreError` when the run exists but has not produced one
    yet); anything else is read as a JSON file.  Returns ``(label,
    kind, payload)``.
    """
    if os.path.isdir(os.path.join(store.root, operand)):
        run = store.open(operand)
        payload = run.load_merged()
        if payload is None:
            raise RunStoreError(
                f"run {operand!r} has no merged artifact yet "
                f"({MERGED_NAME} appears when the sweep completes or resumes "
                "to completion)"
            )
        return operand, "sweep", payload
    payload = read_json(operand)
    if payload is None:
        raise RunStoreError(
            f"{operand!r} is neither a run id under {store.root!r} "
            "nor a readable JSON artifact"
        )
    kind = classify_artifact(payload)
    if kind is None:
        raise RunStoreError(
            f"{operand!r} is not a SWEEP or BENCH artifact "
            "(expected a 'sweep'+'merged' or a 'scenarios' mapping)"
        )
    return os.path.basename(operand), kind, payload


def compare_rows(operands, store):
    """Trajectory rows across artifacts/runs, in operand order."""
    rows = []
    for operand in operands:
        label, kind, payload = resolve_operand(operand, store)
        if kind == "sweep":
            rows.extend(_sweep_rows(label, payload))
        else:
            rows.extend(_bench_rows(label, payload))
    return rows


def cmd_runs(args, out=print, err=None):
    """Entry point behind ``python -m repro runs list|show|compare``."""
    from repro.experiments.common import format_table

    store = RunStore(args.runs_dir)
    try:
        if args.runs_command == "list":
            rows = list_rows(store)
            if not rows:
                out(f"no runs under {store.root!r}")
                return 0
            out(format_table(rows))
            return 0
        if args.runs_command == "show":
            if getattr(args, "timeseries", False):
                run, rows = show_timeseries_rows(store, args.run_id)
                if not rows:
                    out(
                        f"run {run.run_id} has no windowed telemetry "
                        "(arm spec.timeseries_every_ns, e.g. sweep "
                        "--timeseries-every-ms)"
                    )
                    return 0
                out(f"run {run.run_id}: windowed telemetry")
                out(format_table(rows))
                return 0
            run, rows = show_rows(store, args.run_id)
            manifest = run.manifest
            out(
                f"run {run.run_id}: sweep {manifest.get('sweep')!r}, "
                f"seed {manifest.get('seed')}, "
                f"{len(manifest.get('shards', ()))} shard(s)"
            )
            out(format_table(rows))
            return 0
        if getattr(args, "timeseries", False):
            rows = compare_timeseries_rows(args.artifacts, store)
            if not rows:
                out("no windowed telemetry in the given artifacts")
                return 0
            out(format_table(rows))
            return 0
        rows = compare_rows(args.artifacts, store)
        out(format_table(rows))
        return 0
    except RunStoreError as error:
        (err or out)(str(error))
        return 2
