"""repro: a simulation-based reproduction of Albatross (SIGCOMM 2025).

Albatross is Alibaba Cloud's containerized cloud gateway platform with
FPGA-accelerated packet-level load balancing.  This library rebuilds every
subsystem the paper describes as a deterministic discrete-event simulation:

* the FPGA NIC pipeline -- packet-level load balancing (PLB) with the
  FIFO/BUF/BITMAP reorder engine, the two-stage tenant rate limiter, the
  ``pkt_dir`` classifier and protocol priority queues (:mod:`repro.core`);
* the x86 substrate -- cores, service chains, an LRU L3-cache model and
  NUMA effects (:mod:`repro.cpu`);
* forwarding tables -- LPM (trie and DIR-24-8), exact match, sessions
  (:mod:`repro.tables`);
* containerization -- GW pods, SR-IOV VF allocation, fleet scheduling,
  elasticity (:mod:`repro.container`);
* the BGP/BFD control plane and the BGP proxy (:mod:`repro.bgp`);
* workload generators and metrics (:mod:`repro.workloads`,
  :mod:`repro.metrics`);
* one experiment driver per table/figure of the paper's evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro import AlbatrossServer, PodConfig, Simulator, RngRegistry
    from repro.sim import SECOND

    sim = Simulator()
    server = AlbatrossServer(sim, RngRegistry(seed=1))
    pod = server.add_pod(PodConfig(name="gw", data_cores=8))
    # drive pod.ingress(...) with a workload, then:
    sim.run_until(1 * SECOND)
"""

from repro.core import (
    AlbatrossServer,
    GwPodRuntime,
    NicPipeline,
    NicPipelineConfig,
    PlbMeta,
    PodConfig,
    RateLimitDecision,
    ReorderQueueConfig,
    TokenBucket,
    TwoStageRateLimiter,
)
from repro.packet import FlowKey, Packet, PacketKind
from repro.sim import RngRegistry, Simulator

__version__ = "1.0.0"

__all__ = [
    "AlbatrossServer",
    "GwPodRuntime",
    "NicPipeline",
    "NicPipelineConfig",
    "PlbMeta",
    "PodConfig",
    "RateLimitDecision",
    "ReorderQueueConfig",
    "TokenBucket",
    "TwoStageRateLimiter",
    "FlowKey",
    "Packet",
    "PacketKind",
    "RngRegistry",
    "Simulator",
    "__version__",
]
