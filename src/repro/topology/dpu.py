"""The per-server "DPU" pre-classifier tier.

Gryphon-style hierarchical co-offloading (PAPERS.md): a cheap match
stage in front of each server's NIC/FPGA+CPU pipeline.  Flows installed
in its exact-match table are forwarded entirely in the DPU at a fixed,
low latency; everything else falls through to the host pipeline.  Which
flows deserve a table entry is :class:`~repro.topology.promotion.
HotFlowPromoter`'s call -- this class only owns the table and the data
path.

The fast path is synchronous and terminal: a fast-forwarded packet gets
its arrival/departure stamps here and never reaches a pod, exactly like
hardware offload bypassing the host.  Its latency lands in the tier's
own histogram so reports can compare the two tiers side by side.
"""

from repro.metrics.counters import CounterSet
from repro.metrics.histogram import LatencyHistogram


class DpuPreClassifier:
    """Exact-match hot-flow table fronting one server's pipeline.

    Parameters:
        sim: the simulator (clock source for latency stamps).
        slow_sink: ``sink(packet)`` for table misses -- the server's
            :class:`~repro.topology.switch.FlowPodDispatch`.
        table_capacity: max installed flows; installs beyond it are
            refused (``table_full`` counter).
        fast_latency_ns: fixed DPU forwarding latency.
        promoter: optional observer with ``observe(flow)``; every
            packet (both paths) feeds it so installed flows keep
            registering as hot while they stay hot.
        seed: histogram reservoir seed (determinism discipline).

    Counters: ``fast_forwards``, ``slow_forwards``, ``promotions``,
    ``demotions``, ``table_full``.
    """

    __slots__ = ("sim", "slow_sink", "table_capacity", "fast_latency_ns",
                 "promoter", "counters", "latency_histogram", "_table")

    def __init__(self, sim, slow_sink, table_capacity=256,
                 fast_latency_ns=2_000, promoter=None, seed=1):
        if table_capacity <= 0:
            raise ValueError("table_capacity must be positive")
        self.sim = sim
        self.slow_sink = slow_sink
        self.table_capacity = table_capacity
        self.fast_latency_ns = fast_latency_ns
        self.promoter = promoter
        self.counters = CounterSet()
        self.latency_histogram = LatencyHistogram(seed=seed)
        self._table = {}          # FlowKey -> install simtime (ns)

    # -- data path ---------------------------------------------------------

    def ingress(self, packet):
        """Classify one packet: DPU fast path or host slow path."""
        if self.promoter is not None:
            # Both paths feed the sketch: an installed flow must keep
            # looking hot or the demotion aging would evict it the
            # moment it stopped paying the slow-path toll.
            self.promoter.observe(packet.flow)
        if packet.flow in self._table:
            now = self.sim.now
            packet.arrival_ns = now
            packet.departure_ns = now + self.fast_latency_ns
            self.counters.incr("fast_forwards")
            self.latency_histogram.record(self.fast_latency_ns)
            return
        self.counters.incr("slow_forwards")
        self.slow_sink(packet)

    # -- table management (the promoter's API) -----------------------------

    def installed(self, flow):
        return flow in self._table

    def promote(self, flow):
        """Install ``flow``; returns False when already present or full."""
        if flow in self._table:
            return False
        if len(self._table) >= self.table_capacity:
            self.counters.incr("table_full")
            return False
        self._table[flow] = self.sim.now
        self.counters.incr("promotions")
        return True

    def demote(self, flow):
        """Remove ``flow`` from the table; returns False when absent."""
        if self._table.pop(flow, None) is None:
            return False
        self.counters.incr("demotions")
        return True

    @property
    def occupancy(self):
        return len(self._table)
