"""AZ-scale multi-server topology: ECMP uplink + two-tier fast path.

One simulated availability zone is N :class:`~repro.core.gateway.
AlbatrossServer` deployments behind an ECMP uplink switch
(:class:`EcmpUplink`).  Each server fronts its NIC/FPGA+CPU pipeline
with an optional "DPU" pre-classifier tier (:class:`DpuPreClassifier`):
a small exact-match flow table that forwards hot flows at a fixed cheap
latency, with promotion/demotion decided per epoch by
:class:`HotFlowPromoter` on top of the existing space-saving hitter
sketch.  Inside a server, :class:`FlowPodDispatch` picks the pod with a
second, independently seeded flow hash.

Every hop is synchronous (no scheduled events between the uplink and
the pod NIC), so the uplink trivially preserves per-flow packet order:
a flow hashes (or is pinned) to exactly one server and its packets
arrive there in emission order.  Synchronicity also keeps the topology
out of the snapshot surface -- none of these classes carries pending
events -- which is why ``ScenarioSpec`` forbids combining ``servers``
with ``checkpoint_every_ns`` for now.
"""

from repro.topology.dpu import DpuPreClassifier
from repro.topology.promotion import HotFlowPromoter
from repro.topology.switch import EcmpUplink, FlowPodDispatch

__all__ = [
    "DpuPreClassifier",
    "EcmpUplink",
    "FlowPodDispatch",
    "HotFlowPromoter",
]
