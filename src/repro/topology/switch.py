"""The AZ uplink switch (ECMP across servers) and in-server pod dispatch.

Both stages are pure synchronous forwarders: they pick a destination
with a seeded flow hash (:func:`~repro.packet.hashing.crc32_flow_hash`)
and call its sink in the same event.  No state here schedules simulator
events, so per-flow ordering across the AZ follows directly from the
workload sources' per-flow emission order.
"""

from repro.metrics.counters import CounterSet
from repro.packet.hashing import crc32_flow_hash


class EcmpUplink:
    """ECMP uplink switch spraying flows across gateway servers.

    Parameters:
        members: ordered ``[(server_name, sink)]`` -- one entry per
            server; ``sink(packet)`` is the server's ingress (the DPU
            tier when armed, else its pod dispatch).
        hash_seed: seed for the ECMP flow hash; independent from the
            in-server pod hash so collisions are uncorrelated.
        pin_flows: when True (the default), the first packet of a flow
            pins it to the hashed server in an exact-match affinity
            table; later packets follow the pin.  With a static member
            set the pin agrees with the hash, but the table is what
            keeps sessions on their server through scale-out/in.
        tap: optional ``tap(flow, uid, server_name)`` observer invoked
            on every forward -- the ordering-invariant tests hang off
            this hook.

    Counters: ``forwarded``, ``affinity_pins`` (first packet of a flow),
    ``affinity_hits`` (pinned lookups) and ``to_server.<name>``.
    """

    __slots__ = ("members", "hash_seed", "pin_flows", "counters",
                 "_affinity", "tap")

    def __init__(self, members, hash_seed=101, pin_flows=True, tap=None):
        members = tuple(members)
        if not members:
            raise ValueError("an ECMP uplink needs at least one server")
        self.members = members
        self.hash_seed = hash_seed
        self.pin_flows = pin_flows
        self.counters = CounterSet()
        self._affinity = {}       # FlowKey -> member index
        self.tap = tap

    def server_for(self, flow):
        """The member index ``flow`` resolves to (pin first, then hash)."""
        if self.pin_flows:
            index = self._affinity.get(flow)
            if index is not None:
                return index
        return crc32_flow_hash(flow, self.hash_seed) % len(self.members)

    def forward(self, packet):
        """Deliver ``packet`` to its flow's server, synchronously."""
        flow = packet.flow
        index = None
        if self.pin_flows:
            index = self._affinity.get(flow)
            if index is None:
                index = crc32_flow_hash(flow, self.hash_seed) % len(self.members)
                self._affinity[flow] = index
                self.counters.incr("affinity_pins")
            else:
                self.counters.incr("affinity_hits")
        else:
            index = crc32_flow_hash(flow, self.hash_seed) % len(self.members)
        name, sink = self.members[index]
        self.counters.incr("forwarded")
        self.counters.incr(f"to_server.{name}")
        if self.tap is not None:
            self.tap(flow, packet.uid, name)
        sink(packet)

    @property
    def pinned_flows(self):
        """Number of flows currently pinned in the affinity table."""
        return len(self._affinity)


class FlowPodDispatch:
    """In-server pod selector: one seeded flow hash over the pod list.

    Parameters:
        server_name: the hosting server (labels counters and reports).
        sinks: ordered ``[(pod_name, sink)]``; ``sink(packet)`` is
            normally ``pod.ingress`` but may be a migration controller's
            ``route`` indirection for a pod that migrates mid-run.
        hash_seed: pod-pick hash seed (distinct from the uplink's).

    Counters: ``dispatched`` and ``to_pod.<name>``.
    """

    __slots__ = ("server_name", "sinks", "hash_seed", "counters")

    def __init__(self, server_name, sinks, hash_seed=211):
        sinks = tuple(sinks)
        if not sinks:
            raise ValueError(f"server {server_name!r} has no pods to dispatch to")
        self.server_name = server_name
        self.sinks = sinks
        self.hash_seed = hash_seed
        self.counters = CounterSet()

    def forward(self, packet):
        index = crc32_flow_hash(packet.flow, self.hash_seed) % len(self.sinks)
        name, sink = self.sinks[index]
        self.counters.incr("dispatched")
        self.counters.incr(f"to_pod.{name}")
        sink(packet)
