"""Hot-flow promotion/demotion policy for the DPU tier.

Same epoch pattern as :class:`~repro.core.hitters.CpuHitterDetector`,
reusing its :class:`~repro.core.hitters.SpaceSavingSketch`, but keyed
by :class:`~repro.packet.flows.FlowKey` instead of tenant VNI and
driving a :class:`~repro.topology.dpu.DpuPreClassifier` table instead
of the limiter's pre tables.  Every epoch the sketch's top flows above
the rate threshold are installed; installed flows that go quiet for
``demote_after_epochs`` consecutive epochs are evicted so table slots
recycle when bursts end.
"""

from repro.core.hitters import SpaceSavingSketch
from repro.sim.units import SECOND


class HotFlowPromoter:
    """Epoch-driven promotion policy over a DPU pre-classifier.

    Parameters:
        sim: the simulator.
        dpu: the :class:`~repro.topology.dpu.DpuPreClassifier` to drive.
        threshold_pps: flows observed above this slow-path rate are
            promoted.
        epoch_ns: detection epoch; the sketch resets every epoch.
        demote_after_epochs: installed flows unseen as hot for this many
            epochs are demoted.
        sketch_capacity: space-saving sketch size.
    """

    __slots__ = ("sim", "dpu", "threshold_pps", "epoch_ns",
                 "demote_after_epochs", "sketch", "_quiet_epochs", "_task")

    def __init__(self, sim, dpu, threshold_pps=5_000, epoch_ns=10_000_000,
                 demote_after_epochs=2, sketch_capacity=1024):
        self.sim = sim
        self.dpu = dpu
        self.threshold_pps = threshold_pps
        self.epoch_ns = epoch_ns
        self.demote_after_epochs = demote_after_epochs
        self.sketch = SpaceSavingSketch(sketch_capacity)
        self._quiet_epochs = {}   # installed FlowKey -> quiet epoch count
        self._task = sim.every(epoch_ns, self._epoch)

    def observe(self, flow):
        """Called per slow-path packet (one sketch update)."""
        self.sketch.observe(flow)

    def _epoch(self):
        threshold_count = self.threshold_pps * self.epoch_ns / SECOND
        # top() ranks by count descending with deterministic ties, so
        # when the table fills the heaviest flows win the slots.
        hot = [
            flow
            for flow, count in self.sketch.top(self.dpu.table_capacity)
            if count >= threshold_count
        ]
        for flow in hot:
            if self.dpu.promote(flow) or self.dpu.installed(flow):
                self._quiet_epochs[flow] = 0
        hot_set = set(hot)
        for flow in sorted(self._quiet_epochs):
            if flow in hot_set:
                continue
            self._quiet_epochs[flow] += 1
            if self._quiet_epochs[flow] >= self.demote_after_epochs:
                self.dpu.demote(flow)
                del self._quiet_epochs[flow]
        self.sketch.reset()

    def stop(self):
        self._task.cancel()
