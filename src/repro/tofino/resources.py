"""Tofino resource envelopes.

Numbers are representative of Tofino 1 at the granularity the paper
reasons about: match-action stages per pipeline, SRAM/TCAM blocks per
stage, and the PHV (packet header vector) bit budget shared by a
pipeline's parser and MAU stages.  Exact vendor numbers are NDA'd; what
matters for the reproduction is the *ratios* Tab. 1 reports and the
hard-stop failure modes (PHV overflow, SRAM exhaustion, stage overflow).
"""


class PipelineSpec:
    """Resource envelope of one Tofino pipeline."""

    def __init__(
        self,
        stages=12,
        sram_blocks_per_stage=80,
        sram_block_kib=16,
        tcam_blocks_per_stage=24,
        tcam_block_entries=512,
        tcam_entry_bits=44,
        phv_bits=4096,
    ):
        self.stages = stages
        self.sram_blocks_per_stage = sram_blocks_per_stage
        self.sram_block_kib = sram_block_kib
        self.tcam_blocks_per_stage = tcam_blocks_per_stage
        self.tcam_block_entries = tcam_block_entries
        self.tcam_entry_bits = tcam_entry_bits
        self.phv_bits = phv_bits

    @property
    def total_sram_blocks(self):
        return self.stages * self.sram_blocks_per_stage

    @property
    def total_sram_bits(self):
        return self.total_sram_blocks * self.sram_block_kib * 1024 * 8

    @property
    def total_tcam_blocks(self):
        return self.stages * self.tcam_blocks_per_stage

    def folded(self):
        """Pipeline folding (§2.1): two physical pipelines fused into one
        logical pipeline with twice the stages and per-stage memory pool.

        Sailfish folds pipes 0+2 and 1+3 to fit its long table chains.
        """
        return PipelineSpec(
            stages=self.stages * 2,
            sram_blocks_per_stage=self.sram_blocks_per_stage,
            sram_block_kib=self.sram_block_kib,
            tcam_blocks_per_stage=self.tcam_blocks_per_stage,
            tcam_block_entries=self.tcam_block_entries,
            tcam_entry_bits=self.tcam_entry_bits,
            phv_bits=self.phv_bits,
        )


class TofinoSpec:
    """A whole chip: four pipelines plus line-rate characteristics."""

    def __init__(self, pipelines=4, pipeline_spec=None, pipeline_tbps=1.6):
        self.pipelines = pipelines
        self.pipeline_spec = pipeline_spec if pipeline_spec is not None else PipelineSpec()
        self.pipeline_tbps = pipeline_tbps

    @property
    def total_tbps(self):
        return self.pipelines * self.pipeline_tbps
