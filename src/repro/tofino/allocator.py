"""Pipeline resource allocation: the "compiler" the paper fights with.

Given a :class:`~repro.tofino.program.P4Program` and a
:class:`~repro.tofino.resources.PipelineSpec`, the allocator:

1. checks the PHV budget against the header stack;
2. places tables into stages in dependency order (a table goes in a
   stage strictly after all its dependencies);
3. charges SRAM blocks (exact keys + action data, with a hash-way
   replication overhead) and TCAM blocks (lpm/ternary keys) per stage,
   spilling a table across consecutive stages when one stage's blocks
   don't suffice.

Any failure raises :class:`AllocationError` with the same three causes
the paper reports: ``phv`` overflow, ``stage`` overflow (dependency
chain longer than the pipeline), and ``memory`` exhaustion.
"""

import math

from repro.tofino.program import MATCH_EXACT

# Exact-match SRAM is organized in hash ways; provisioned bits exceed raw
# entry bits by this factor (ways + pointer/valid overhead).
EXACT_MATCH_OVERHEAD = 1.25


class AllocationError(Exception):
    """Compilation failure; ``cause`` in {"phv", "stage", "memory"}."""

    def __init__(self, cause, message):
        super().__init__(message)
        self.cause = cause


class _StageState:
    __slots__ = ("sram_free", "tcam_free", "tables")

    def __init__(self, spec):
        self.sram_free = spec.sram_blocks_per_stage
        self.tcam_free = spec.tcam_blocks_per_stage
        self.tables = []


class AllocationResult:
    """Successful placement: per-stage assignment plus utilization."""

    def __init__(self, program, spec, placement, sram_used, tcam_used):
        self.program = program
        self.spec = spec
        self.placement = placement  # table name -> (first_stage, last_stage)
        self.sram_blocks_used = sram_used
        self.tcam_blocks_used = tcam_used

    @property
    def phv_utilization(self):
        return self.program.phv_bits() / self.spec.phv_bits

    @property
    def sram_utilization(self):
        return self.sram_blocks_used / self.spec.total_sram_blocks

    @property
    def tcam_utilization(self):
        return self.tcam_blocks_used / self.spec.total_tcam_blocks

    @property
    def stages_used(self):
        return 1 + max(last for _, last in self.placement.values())

    def utilization_row(self):
        """Tab. 1-style row: (SRAM %, TCAM %, PHV %)."""
        return (
            round(self.sram_utilization * 100, 1),
            round(self.tcam_utilization * 100, 1),
            round(self.phv_utilization * 100, 1),
        )


class PipelineAllocator:
    """Places one program onto one pipeline."""

    def __init__(self, spec):
        self.spec = spec

    # -- per-table cost model --------------------------------------------

    def sram_blocks_for(self, table):
        """SRAM blocks for the table's entries (keys and/or action data)."""
        block_bits = self.spec.sram_block_kib * 1024 * 8
        if table.match_kind == MATCH_EXACT:
            bits = table.entries * (table.key_bits + table.action_bits)
            bits *= EXACT_MATCH_OVERHEAD
        else:
            # TCAM holds the key; SRAM holds the action data.
            bits = table.entries * table.action_bits
        return max(1, math.ceil(bits / block_bits))

    def tcam_blocks_for(self, table):
        if not table.uses_tcam:
            return 0
        slices = math.ceil(table.key_bits / self.spec.tcam_entry_bits)
        rows = math.ceil(table.entries / self.spec.tcam_block_entries)
        return max(1, slices * rows)

    # -- allocation ---------------------------------------------------------

    def allocate(self, program):
        """Place ``program``; returns an :class:`AllocationResult`.

        Raises :class:`AllocationError` on PHV/stage/memory exhaustion.
        """
        phv_needed = program.phv_bits()
        if phv_needed > self.spec.phv_bits:
            raise AllocationError(
                "phv",
                f"{program.name}: header stack needs {phv_needed} PHV bits, "
                f"pipeline has {self.spec.phv_bits}",
            )
        try:
            depth = program.dependency_depth()
        except ValueError as exc:
            raise AllocationError("stage", str(exc)) from exc
        if depth > self.spec.stages:
            raise AllocationError(
                "stage",
                f"{program.name}: dependency chain needs {depth} stages, "
                f"pipeline has {self.spec.stages}",
            )

        stages = [_StageState(self.spec) for _ in range(self.spec.stages)]
        placement = {}
        for table in self._dependency_order(program):
            earliest = 0
            for dep in table.depends_on:
                earliest = max(earliest, placement[dep][1] + 1)
            placement[table.name] = self._place_table(
                program, stages, table, earliest
            )

        sram_used = sum(
            self.spec.sram_blocks_per_stage - stage.sram_free for stage in stages
        )
        tcam_used = sum(
            self.spec.tcam_blocks_per_stage - stage.tcam_free for stage in stages
        )
        return AllocationResult(program, self.spec, placement, sram_used, tcam_used)

    def _dependency_order(self, program):
        """Topological order, dependency-depth first (stable)."""
        placed = set()
        ordered = []
        remaining = list(program.tables)
        while remaining:
            progressed = False
            for table in list(remaining):
                if all(dep in placed for dep in table.depends_on):
                    ordered.append(table)
                    placed.add(table.name)
                    remaining.remove(table)
                    progressed = True
            if not progressed:
                cycle = ", ".join(table.name for table in remaining)
                raise AllocationError("stage", f"dependency cycle among: {cycle}")
        return ordered

    def _place_table(self, program, stages, table, earliest):
        """Greedy spill placement from ``earliest``; returns (first, last)."""
        sram_needed = self.sram_blocks_for(table)
        tcam_needed = self.tcam_blocks_for(table)
        first = None
        stage_index = earliest
        while stage_index < len(stages) and (sram_needed > 0 or tcam_needed > 0):
            stage = stages[stage_index]
            take_sram = min(sram_needed, stage.sram_free)
            take_tcam = min(tcam_needed, stage.tcam_free)
            if take_sram or take_tcam or (sram_needed == 0 and tcam_needed == 0):
                if first is None and (take_sram or take_tcam):
                    first = stage_index
                stage.sram_free -= take_sram
                stage.tcam_free -= take_tcam
                sram_needed -= take_sram
                tcam_needed -= take_tcam
                if take_sram or take_tcam:
                    stage.tables.append(table.name)
            stage_index += 1
        if sram_needed > 0 or tcam_needed > 0:
            kind = "SRAM" if sram_needed > 0 else "TCAM"
            raise AllocationError(
                "memory",
                f"{program.name}: table {table.name!r} needs "
                f"{sram_needed or tcam_needed} more {kind} blocks than the "
                f"pipeline has left",
            )
        return first, stage_index - 1

    def try_allocate(self, program):
        """(result, error) tuple instead of raising -- compiler-UX helper."""
        try:
            return self.allocate(program), None
        except AllocationError as error:
            return None, error
