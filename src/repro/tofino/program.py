"""P4-ish program description for the allocator.

A program is a set of parsed headers (PHV consumers) and a set of
match-action tables with sizes, match kinds and dependencies.  This is
deliberately the granularity at which the paper discusses Sailfish's
resource exhaustion -- headers cost PHV bits, tables cost SRAM/TCAM
blocks and stages, and dependency chains bound the minimum stage count.
"""


class Header:
    """A parsed header: its PHV footprint."""

    __slots__ = ("name", "bits")

    def __init__(self, name, bits):
        if bits <= 0:
            raise ValueError(f"header {name!r} must have positive bits")
        self.name = name
        self.bits = bits

    def __repr__(self):
        return f"Header({self.name!r}, {self.bits}b)"


MATCH_EXACT = "exact"
MATCH_LPM = "lpm"
MATCH_TERNARY = "ternary"


class Table:
    """A match-action table.

    Attributes:
        name: unique table name.
        match_kind: ``exact`` (SRAM), ``lpm``/``ternary`` (TCAM keys with
            SRAM action data).
        entries: provisioned entry count.
        key_bits / action_bits: per-entry widths.
        depends_on: names of tables that must execute earlier (data or
            control dependency); drives stage placement.
    """

    __slots__ = ("name", "match_kind", "entries", "key_bits", "action_bits", "depends_on")

    def __init__(self, name, match_kind, entries, key_bits, action_bits, depends_on=()):
        if match_kind not in (MATCH_EXACT, MATCH_LPM, MATCH_TERNARY):
            raise ValueError(f"unknown match kind {match_kind!r}")
        if entries <= 0:
            raise ValueError(f"table {name!r} must have positive entries")
        self.name = name
        self.match_kind = match_kind
        self.entries = entries
        self.key_bits = key_bits
        self.action_bits = action_bits
        self.depends_on = tuple(depends_on)

    @property
    def uses_tcam(self):
        return self.match_kind in (MATCH_LPM, MATCH_TERNARY)

    def __repr__(self):
        return f"Table({self.name!r}, {self.match_kind}, {self.entries} entries)"


class P4Program:
    """Headers + tables with validated dependencies."""

    def __init__(self, name, headers=(), tables=()):
        self.name = name
        self.headers = list(headers)
        self.tables = []
        self._by_name = {}
        for table in tables:
            self.add_table(table)

    def add_header(self, header):
        if any(existing.name == header.name for existing in self.headers):
            raise ValueError(f"duplicate header {header.name!r}")
        self.headers.append(header)
        return header

    def add_table(self, table):
        if table.name in self._by_name:
            raise ValueError(f"duplicate table {table.name!r}")
        for dep in table.depends_on:
            if dep not in self._by_name:
                raise ValueError(
                    f"table {table.name!r} depends on unknown table {dep!r}"
                )
        self._by_name[table.name] = table
        self.tables.append(table)
        return table

    def table(self, name):
        return self._by_name[name]

    def phv_bits(self):
        """Total PHV demand of the parsed header stack."""
        return sum(header.bits for header in self.headers)

    def dependency_depth(self):
        """Length of the longest dependency chain (min stages needed).

        Raises ValueError on a dependency cycle.
        """
        depth = {}
        visiting = set()

        def walk(table):
            if table.name in depth:
                return depth[table.name]
            if table.name in visiting:
                raise ValueError(f"dependency cycle through table {table.name!r}")
            visiting.add(table.name)
            best = 1 + max(
                (walk(self._by_name[dep]) for dep in table.depends_on), default=0
            )
            visiting.discard(table.name)
            depth[table.name] = best
            return best

        return max((walk(table) for table in self.tables), default=0)

    def copy(self, name=None):
        """Shallow copy (tables/headers are immutable enough to share)."""
        duplicate = P4Program(name or self.name)
        duplicate.headers = list(self.headers)
        for table in self.tables:
            duplicate.add_table(table)
        return duplicate
