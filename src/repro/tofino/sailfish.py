"""A representative Sailfish program pair (Tab. 1).

Sailfish folds Tofino's four pipelines into two logical 24-stage
pipelines: pipes 0,2 are the gateway entry (heavy protocol parsing ->
PHV-bound at 97%), pipes 1,3 hold the VM-NC mapping for millions of
tenants (SRAM-bound at 96.4%).  The table/header sets below are
representative -- real Sailfish is proprietary -- but they are sized so
the allocator lands on Tab. 1's utilization row, and they inherit the
paper's consistency points (e.g. ~0.2M LPM routes on the egress pipes,
matching Tab. 6's Sailfish LPM capacity).
"""

from repro.tofino.program import (
    Header,
    MATCH_EXACT,
    MATCH_LPM,
    MATCH_TERNARY,
    P4Program,
    Table,
)

# Tab. 1, for reference in tests and benches.
TAB1_PIPE02 = {"sram": 69.2, "tcam": 40.3, "phv": 97.0}
TAB1_PIPE13 = {"sram": 96.4, "tcam": 66.7, "phv": 82.3}


def _overlay_header_stack():
    """The outer+inner stack a multi-protocol cloud gateway parses."""
    return [
        Header("ethernet", 112),
        Header("vlan_outer", 32),
        Header("vlan_inner", 32),
        Header("ipv4", 160),
        Header("ipv6", 320),
        Header("udp", 64),
        Header("tcp", 160),
        Header("vxlan", 64),
        Header("gre", 128),
        Header("icmp", 64),
        Header("inner_ethernet", 112),
        Header("inner_ipv4", 160),
        Header("inner_ipv6", 320),
        Header("inner_tcp", 160),
        Header("inner_udp", 64),
        Header("zoonet_probe", 96),
    ]


def sailfish_ingress_program():
    """Pipes 0,2: gateway entry -- parsing-heavy, PHV at 97%."""
    program = P4Program("sailfish-ingress", headers=_overlay_header_stack())
    # Bridge/intrinsic metadata carried between stages also lives in PHV;
    # this is what pushes the ingress pipes to the 97% wall.
    program.add_header(Header("bridge_metadata", 1024))
    program.add_header(Header("intrinsic_metadata", 901))

    program.add_table(
        Table("port_properties", MATCH_EXACT, 4096, key_bits=16, action_bits=64)
    )
    program.add_table(
        Table(
            "tunnel_terminate",
            MATCH_EXACT,
            524_288,
            key_bits=56,
            action_bits=48,
            depends_on=("port_properties",),
        )
    )
    program.add_table(
        Table(
            "tenant_lookup",
            MATCH_EXACT,
            950_000,
            key_bits=24,
            action_bits=64,
            depends_on=("tunnel_terminate",),
        )
    )
    program.add_table(
        Table(
            "ingress_acl",
            MATCH_TERNARY,
            36_500,
            key_bits=104,
            action_bits=32,
            depends_on=("port_properties",),
        )
    )
    program.add_table(
        Table(
            "qos_classifier",
            MATCH_TERNARY,
            4_096,
            key_bits=64,
            action_bits=16,
            depends_on=("port_properties",),
        )
    )
    return program


def sailfish_egress_program():
    """Pipes 1,3: forwarding tables -- SRAM at 96.4%, ~0.2M LPM routes."""
    program = P4Program(
        "sailfish-egress",
        headers=[
            Header("ethernet", 112),
            Header("ipv4", 160),
            Header("ipv6", 320),
            Header("udp", 64),
            Header("vxlan", 64),
            Header("inner_ethernet", 112),
            Header("inner_ipv4", 160),
            Header("inner_tcp", 160),
            Header("bridge_metadata", 1024),
            Header("intrinsic_metadata", 1195),
        ],
    )
    # The VM-NC mapping for millions of tenants: the table that eats the
    # egress pipes' SRAM (Tab. 1's 96.4%).
    program.add_table(
        Table("vm_nc_mapping", MATCH_EXACT, 940_000, key_bits=56, action_bits=96)
    )
    program.add_table(
        Table(
            "vxlan_route_lpm",
            MATCH_LPM,
            190_000,  # ~0.2M: Tab. 6's Sailfish LPM capacity
            key_bits=32,
            action_bits=48,
        )
    )
    program.add_table(
        Table(
            "nexthop",
            MATCH_EXACT,
            131_072,
            key_bits=32,
            action_bits=160,
            depends_on=("vxlan_route_lpm",),
        )
    )
    program.add_table(
        Table(
            "egress_acl",
            MATCH_TERNARY,
            2_048,
            key_bits=104,
            action_bits=16,
            depends_on=("nexthop",),
        )
    )
    program.add_table(
        Table(
            "encap_rewrite",
            MATCH_EXACT,
            65_536,
            key_bits=24,
            action_bits=256,
            depends_on=("nexthop",),
        )
    )
    return program


def new_feature_attempts():
    """The §2.1 failure catalogue: changes that no longer compile.

    Returns {name: mutate(program) -> program} builders applied to the
    appropriate Sailfish program by the Tab. 1 experiment.
    """

    def add_geneve(program):
        mutated = program.copy("sailfish-ingress+geneve")
        # Geneve with a realistic option budget.
        mutated.add_header(Header("geneve", 64 + 128))
        return mutated

    def add_nsh(program):
        mutated = program.copy("sailfish-ingress+nsh")
        mutated.add_header(Header("nsh", 64 + 128))
        return mutated

    def add_large_table(program):
        mutated = program.copy("sailfish-egress+big-table")
        mutated.add_table(
            Table("new_service_table", MATCH_EXACT, 524_288, key_bits=64, action_bits=128)
        )
        return mutated

    def add_long_chain(program):
        mutated = program.copy("sailfish-egress+long-chain")
        previous = "egress_acl"
        for index in range(24):
            name = f"chained_fn_{index}"
            mutated.add_table(
                Table(name, MATCH_EXACT, 1024, key_bits=32, action_bits=32,
                      depends_on=(previous,))
            )
            previous = name
        return mutated

    return {
        "new header (Geneve)": ("ingress", add_geneve),
        "new header (NSH)": ("ingress", add_nsh),
        "large table": ("egress", add_large_table),
        "long-chained function": ("egress", add_long_chain),
    }
