"""Tofino pipeline resource model: the 2nd-gen (Sailfish) substrate.

The paper's motivation (§2.1, Tab. 1) is that Sailfish consumed nearly
all of Tofino's on-chip resources -- 97% PHV on the ingress pipes, 96.4%
SRAM on the egress pipes -- so new headers, large tables, and
long-chained functions could no longer compile.  This package models
that: a P4-ish program description (:mod:`~repro.tofino.program`), a
per-pipeline resource allocator with stage/dependency placement
(:mod:`~repro.tofino.allocator`), and a representative Sailfish program
(:mod:`~repro.tofino.sailfish`) whose allocation lands on Tab. 1's
utilization numbers and exhibits all three failure modes the paper
lists.
"""

from repro.tofino.allocator import AllocationError, AllocationResult, PipelineAllocator
from repro.tofino.program import Header, P4Program, Table
from repro.tofino.resources import PipelineSpec, TofinoSpec
from repro.tofino.sailfish import sailfish_egress_program, sailfish_ingress_program

__all__ = [
    "AllocationError",
    "AllocationResult",
    "PipelineAllocator",
    "Header",
    "P4Program",
    "Table",
    "PipelineSpec",
    "TofinoSpec",
    "sailfish_egress_program",
    "sailfish_ingress_program",
]
