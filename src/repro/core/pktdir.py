"""The programmable ``pkt_dir`` packet classifier (§3.2).

At NIC ingress, ``pkt_dir`` splits traffic into three paths:

* **priority packets** -- protocol traffic (BGP/BFD) through dedicated
  queues, immune to data-plane saturation;
* **PLB packets** -- ordinary data traffic sprayed per packet;
* **RSS packets** -- data traffic pinned per flow; this is both the
  fallback mode and the home of stateful odds and ends (Zoonet probes,
  health checks, vSwitch cache-learning packets) that must not be sprayed.

Containers program the classification: each GW pod installs rules for its
VNI range, including whether packets arrive whole or header-only.
"""

import enum

from repro.packet.packet import PacketKind


class DeliveryPath(enum.Enum):
    """Which NIC path a packet takes after classification."""

    PRIORITY = "priority"
    PLB = "plb"
    RSS = "rss"


class PktDirRule:
    """One programmable classification rule.

    Matches on packet kind and (optionally) VNI and destination port;
    yields a delivery path and delivery mode.  Rules are evaluated in
    priority order (lower value first).
    """

    __slots__ = ("kind", "vni", "dst_port", "path", "header_only", "priority")

    def __init__(
        self,
        path,
        kind=None,
        vni=None,
        dst_port=None,
        header_only=False,
        priority=100,
    ):
        self.path = path
        self.kind = kind
        self.vni = vni
        self.dst_port = dst_port
        self.header_only = header_only
        self.priority = priority

    def matches(self, packet):
        if self.kind is not None and packet.kind is not self.kind:
            return False
        if self.vni is not None and packet.vni != self.vni:
            return False
        if self.dst_port is not None and packet.flow.dst_port != self.dst_port:
            return False
        return True

    def __repr__(self):
        return (
            f"PktDirRule(path={self.path.value}, kind={self.kind}, "
            f"vni={self.vni}, dst_port={self.dst_port}, prio={self.priority})"
        )


class PktDir:
    """Rule table + default behaviour.

    With no matching rule, protocol packets take the priority path,
    stateful packets take RSS, and data packets take the pod's configured
    default mode (PLB in production, RSS after a fallback switch).
    """

    def __init__(self, default_data_path=DeliveryPath.PLB):
        # Re-derived from the pipeline's captured mode on restore (see
        # NicPipeline.restore), not snapshot data in its own right.
        self.default_data_path = default_data_path  # lint: disable=SNAP001(re-derived from the captured pipeline mode on restore)
        # Control-plane configuration: pods re-install their rules at
        # build time, so the table is shape, not state.
        self._rules = []  # lint: disable=SNAP001(control-plane config re-installed at pod build; not snapshot data)
        self.classified = {path: 0 for path in DeliveryPath}

    def checkpoint(self):
        """Plain-data snapshot: the per-path classification tallies.

        The rule table and default path are deliberately absent: rules
        are control-plane configuration re-installed when the pod is
        built, and the default data path is re-derived from the
        pipeline's captured mode on restore.
        """
        return {
            "classified": {
                path.value: self.classified[path] for path in DeliveryPath
            },
        }

    def restore(self, snapshot):
        self.classified = {
            path: snapshot["classified"][path.value] for path in DeliveryPath
        }

    def add_rule(self, rule):
        """Install a rule; table is re-sorted by priority."""
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.priority)
        return rule

    def remove_rule(self, rule):
        self._rules.remove(rule)

    @property
    def rules(self):
        return list(self._rules)

    def set_default_data_path(self, path):
        """Switch the pod's data-plane mode (PLB <-> RSS fallback)."""
        if path not in (DeliveryPath.PLB, DeliveryPath.RSS):
            raise ValueError("default data path must be PLB or RSS")
        self.default_data_path = path

    def classify(self, packet):
        """Return (DeliveryPath, header_only) for ``packet``."""
        rules = self._rules
        if rules:
            for rule in rules:
                # Inline of PktDirRule.matches (kept in sync): the rule
                # walk sits on the per-packet ingress path.
                if (
                    (rule.kind is None or packet.kind is rule.kind)
                    and (rule.vni is None or packet.vni == rule.vni)
                    and (
                        rule.dst_port is None
                        or packet.flow.dst_port == rule.dst_port
                    )
                ):
                    self.classified[rule.path] += 1
                    return rule.path, rule.header_only
        kind = packet.kind
        if kind is PacketKind.PROTOCOL:
            path = DeliveryPath.PRIORITY
        elif kind is PacketKind.STATEFUL:
            path = DeliveryPath.RSS
        else:
            path = self.default_data_path
        self.classified[path] += 1
        return path, False
