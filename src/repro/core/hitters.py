"""CPU-side proactive heavy-hitter detection (§4.3, planned work).

The paper: "we plan to utilize the CPU to detect heavy hitters in
advance and then install them to the pre_check and pre_meter table for
avoiding triggering hash collisions in the meter_table."

This module implements that plan.  The CPU side sees every forwarded
packet anyway, so a space-saving stream sketch can rank tenants by rate
and push the top talkers into the limiter's pre tables *before* their
overflow ever reaches the shared meter table.  The sketch is the classic
space-saving (Metwally et al.) top-k structure: bounded memory, no
false negatives above the threshold.
"""

from repro.sim.units import SECOND


class SpaceSavingSketch:
    """Space-saving top-k counter over tenant VNIs.

    ``capacity`` bounds tracked tenants; a new tenant evicts the current
    minimum, inheriting its count (the classic over-estimate bound:
    error <= min_count).
    """

    def __init__(self, capacity=1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts = {}
        self.total = 0

    def observe(self, vni, count=1):
        self.total += count
        if vni in self._counts:
            self._counts[vni] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[vni] = count
            return
        # Evict the minimum; the newcomer inherits its count.
        min_vni = min(self._counts, key=self._counts.get)
        min_count = self._counts.pop(min_vni)
        self._counts[vni] = min_count + count

    def estimate(self, vni):
        return self._counts.get(vni, 0)

    def top(self, k):
        """[(vni, estimated count)] of the k largest."""
        ranked = sorted(self._counts.items(), key=lambda item: -item[1])
        return ranked[:k]

    def reset(self):
        self._counts.clear()
        self.total = 0


class CpuHitterDetector:
    """Periodic CPU-side detection feeding the limiter's pre tables.

    Parameters:
        sim: the simulator.
        limiter: a :class:`~repro.core.ratelimit.TwoStageRateLimiter`.
        threshold_pps: tenants exceeding this observed rate are promoted.
        period_ns: detection epoch; the sketch resets every epoch.
        demote_after_epochs: tenants quiet for this many epochs are
            removed from the pre tables (bursts end).
    """

    def __init__(
        self,
        sim,
        limiter,
        threshold_pps=1_000_000,
        period_ns=1 * SECOND,
        sketch_capacity=1024,
        demote_after_epochs=3,
    ):
        self.sim = sim
        self.limiter = limiter
        self.threshold_pps = threshold_pps
        self.period_ns = period_ns
        self.demote_after_epochs = demote_after_epochs
        self.sketch = SpaceSavingSketch(sketch_capacity)
        self.promotions = 0
        self.demotions = 0
        self._quiet_epochs = {}
        self._task = sim.every(period_ns, self._epoch)

    def observe_packet(self, vni):
        """Call from the CPU fast path (cheap: one dict update)."""
        self.sketch.observe(vni)

    def _epoch(self):
        threshold_count = self.threshold_pps * self.period_ns / SECOND
        hot = {
            vni
            for vni, count in self.sketch.top(self.limiter.pre_entries)
            if count >= threshold_count
        }
        for vni in hot:
            already_installed = vni in self.limiter.pre_table_vnis
            if self.limiter.promote_heavy_hitter(vni) and not already_installed:
                self.promotions += 1
            self._quiet_epochs[vni] = 0
        # Age out tenants that stopped being hot.
        for vni in list(self._quiet_epochs):
            if vni in hot:
                continue
            self._quiet_epochs[vni] += 1
            if self._quiet_epochs[vni] >= self.demote_after_epochs:
                self.limiter.demote(vni)
                del self._quiet_epochs[vni]
                self.demotions += 1
        self.sketch.reset()

    def stop(self):
        self._task.cancel()
