"""The assembled FPGA NIC pipeline for one GW pod (Fig. 1, Fig. 3).

Ingress: ``pkt_dir`` classification -> overload rate limiting -> PLB spray
(or RSS pinning) -> DMA to the pod's RX data queues.

Egress: CPU completion -> DMA back -> legal check -> reorder check ->
deparser -> wire.  Explicit CPU drops take the active-drop-flag shortcut
so reorder resources are released immediately.

Per-module latencies come from Tab. 4 via
:class:`~repro.core.resources.NicLatencyModel`.
"""

from repro.analysis.sanitizer import get_sanitizer
from repro.core.meta import MetaPlacement, placement_throughput_factor
from repro.core.offload import FAST_PATH_LATENCY_NS
from repro.core.pktdir import DeliveryPath, PktDir
from repro.core.plb.dispatch import PlbDispatcher
from repro.core.plb.reorder import ReorderEngine, ReorderQueueConfig, TxOutcome
from repro.core.priority import PriorityQueueManager
from repro.core.resources import NicLatencyModel
from repro.core.rss import RssDispatcher
from repro.cpu.core import Verdict
from repro.metrics.counters import CounterSet


class NicPipelineConfig:
    """Configuration for one pod's slice of the NIC pipeline."""

    def __init__(
        self,
        mode="plb",
        reorder=None,
        rate_limiter=None,
        drop_flag_enabled=True,
        header_only=False,
        meta_placement=MetaPlacement.TAIL,
        latency_model=None,
        session_offload=None,
        pcie_link=None,
    ):
        if mode not in ("plb", "rss"):
            raise ValueError(f"mode must be 'plb' or 'rss': {mode!r}")
        self.mode = mode
        self.reorder = reorder if reorder is not None else ReorderQueueConfig()
        self.rate_limiter = rate_limiter
        self.drop_flag_enabled = drop_flag_enabled
        self.header_only = header_only
        self.meta_placement = meta_placement
        self.latency_model = (
            latency_model if latency_model is not None else NicLatencyModel()
        )
        # Optional FpgaSessionOffload (§7 roadmap): established sessions
        # are forwarded entirely on the FPGA fast path.
        self.session_offload = session_offload
        # Optional PcieLinkModel: accounts FPGA<->CPU bytes, honouring
        # header-payload-split mode (appendix A).
        self.pcie_link = pcie_link


class NicPipeline:
    """One GW pod's NIC data path.

    Parameters:
        sim: the simulator.
        cores: the pod's data cores (``CpuCore``), RX-queue order.
        config: a :class:`NicPipelineConfig`.
        egress_fn: called as ``egress_fn(packet, outcome)`` when a packet
            hits the wire (outcome is a
            :class:`~repro.core.plb.reorder.TxOutcome` or ``"rss"``).
        protocol_fn: handler for protocol packets delivered via the
            priority path (defaults to a no-op).

    The pod's cores must have been constructed with this pipeline's
    :meth:`on_cpu_completion` as their completion callback (the
    :mod:`~repro.core.gateway` runtime wires this up).
    """

    def __init__(self, sim, cores, config, egress_fn, protocol_fn=None):
        self.sim = sim
        self.cores = list(cores)
        self.config = config
        self.egress_fn = egress_fn
        self.counters = CounterSet()
        self.pkt_dir = PktDir(
            DeliveryPath.PLB if config.mode == "plb" else DeliveryPath.RSS
        )
        self.latency = config.latency_model
        self.reorder = ReorderEngine(sim, config.reorder, self._on_reorder_transmit)
        self.plb = PlbDispatcher(self.cores, self.reorder, lambda: sim.now)
        self.rss = RssDispatcher(self.cores)
        self.rate_limiter = config.rate_limiter
        self.session_offload = config.session_offload
        self.pcie_link = config.pcie_link
        self.priority = PriorityQueueManager(
            sim, protocol_fn if protocol_fn is not None else lambda packet: None
        )
        # Meta placement only affects CPU-side throughput; model it as a
        # service-time inflation factor applied by the gateway runtime.
        self.cpu_throughput_factor = placement_throughput_factor(config.meta_placement)
        self._fpga_stalled = False
        self._heartbeat = 0
        # Sanitizer ledger: every packet entering ingress() must settle at
        # most once (transmitted, dropped, or handed to the priority path).
        self._sanitizer = get_sanitizer()
        # Deliberately not snapshot data: carrying the ledger would make
        # snapshot bytes depend on whether the sanitizer is installed
        # (see the note in restore()); a fresh pipeline's ledger starts
        # balanced and conserves over post-restore traffic on its own.
        self._san_injected = 0  # lint: disable=SNAP001(sanitizer ledger is instrumentation; snapshot bytes must not depend on sanitizer presence)
        self._san_settled = 0  # lint: disable=SNAP001(sanitizer ledger is instrumentation; snapshot bytes must not depend on sanitizer presence)
        self._rx_latency_ns = self.latency.rx_ns()
        self._tx_dma_ns = self.latency.module_ns("dma", "tx")
        self._tx_post_reorder_ns = self.latency.module_ns(
            "plb", "tx"
        ) + self.latency.module_ns("basic_pipeline", "tx")
        # Hot-path bindings: these objects never change over the pipeline's
        # lifetime (unlike egress_fn/rate_limiter/session_offload, which
        # experiments swap post-construction and must be read per call).
        self._schedule = sim.schedule
        self._incr = self.counters.incr
        self._classify = self.pkt_dir.classify
        self._plb_dispatch = self.plb.dispatch
        self._rss_dispatch = self.rss.dispatch

    # ------------------------------------------------------------------
    # Sanitizer ledger
    # ------------------------------------------------------------------

    def _san_settle(self, packet, stage):
        """One packet reached a terminal stage; the ledger must balance."""
        self._san_settled += 1
        self._sanitizer.ensure(
            self._san_settled <= self._san_injected, "packet-conservation",
            f"settled {self._san_settled} packets but only "
            f"{self._san_injected} entered ingress (stage {stage!r})",
            uid=packet.uid, stage=stage,
        )

    def sanitizer_in_flight(self):
        """Packets injected but not yet settled (>= 0 while conserving)."""
        return self._san_injected - self._san_settled

    #: Counters that settle a packet's fate.  Every packet counted by
    #: ``rx_packets`` ends up in exactly one of these, so
    #: ``rx_packets - sum(terminal)`` is the number still in flight.
    #: Deliberately absent: ``dispatched`` and ``offload_fast_path`` (the
    #: packet is still moving; it settles at ``tx_packets``),
    #: ``reorder_drop_flag`` (already settled at ``cpu_acl_drops``; the
    #: flag release only reclaims reorder resources) and
    #: ``pod_crashed_drops`` (counted *instead of* ``rx_packets``, not
    #: after it).
    TERMINAL_COUNTERS = (
        "tx_packets",
        "fpga_stall_drops",
        "rx_priority",
        "rate_limited_drops",
        "reorder_fifo_drops",
        "rx_queue_drops",
        "cpu_silent_drops",
        "cpu_acl_drops",
        "reorder_payload_gone",
    )

    def in_flight(self):
        """Data-plane packets inside the pipeline right now.

        Unlike :meth:`sanitizer_in_flight` this works without the
        sanitizer installed: it is pure counter arithmetic, usable by the
        control plane to decide when a draining pod has gone quiet.
        """
        counters = self.counters
        settled = sum(counters.get(name) for name in self.TERMINAL_COUNTERS)
        return counters.get("rx_packets") - settled

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------

    def ingress(self, packet):
        """A packet arrives from the wire at the current sim time."""
        sanitizer = self._sanitizer
        incr = self._incr
        packet.arrival_ns = self.sim._now
        incr("rx_packets")
        if sanitizer is not None:
            self._san_injected += 1
        if self._fpga_stalled:
            # A stalled pipeline makes no forward progress; the wire keeps
            # delivering and the packets are simply lost.
            packet.drop_reason = "fpga_stall"
            incr("fpga_stall_drops")
            if sanitizer is not None:
                self._san_settle(packet, "fpga_stall_drop")
            return
        path, header_only = self._classify(packet)

        if path is DeliveryPath.PRIORITY:
            # Priority path skips the rate limiter and PLB entirely.
            self._schedule(self._rx_latency_ns, self.priority.enqueue, packet)
            incr("rx_priority")
            if sanitizer is not None:
                self._san_settle(packet, "priority_handoff")
            return

        if self.rate_limiter is not None:
            decision = self.rate_limiter.admit(packet.vni, self.sim._now)
            if not decision.allowed:
                packet.drop_reason = f"rate_limit_{decision.value}"
                incr("rate_limited_drops")
                if sanitizer is not None:
                    self._san_settle(packet, "rate_limited_drop")
                return

        if self.session_offload is not None and self.session_offload.lookup(
            packet.flow
        ):
            # FPGA fast path: established session, CPU never sees it.
            incr("offload_fast_path")
            self._schedule(
                FAST_PATH_LATENCY_NS, self._transmit, packet, "fpga_fast_path"
            )
            return

        if path is DeliveryPath.PLB:
            core = self._plb_dispatch(
                packet, header_only=header_only or self.config.header_only
            )
            if core is None:
                incr("reorder_fifo_drops")
                if sanitizer is not None:
                    self._san_settle(packet, "ingress_drop")
                return
        else:
            core = self._rss_dispatch(packet)
        incr("dispatched")
        self._schedule(self._rx_latency_ns, self._deliver_to_core, packet, core)

    def _deliver_to_core(self, packet, core):
        if self.pcie_link is not None:
            # RX crossing of the FPGA->CPU DMA.
            self.pcie_link.record(packet.size, split=packet.header_only)
        if not core.enqueue(packet):
            # Silent driver loss: the NIC is never told.  For PLB packets
            # this leaves a hole in the reorder FIFO -> HOL until timeout.
            packet.drop_reason = "rx_queue_overflow"
            self._incr("rx_queue_drops")
            if self._sanitizer is not None:
                self._san_settle(packet, "rx_queue_overflow")

    # ------------------------------------------------------------------
    # Egress
    # ------------------------------------------------------------------

    def on_cpu_completion(self, packet, verdict, core):
        """Wired as every data core's completion callback."""
        if verdict is not Verdict.FORWARD:
            if verdict is Verdict.DROP_SILENT:
                self._incr("cpu_silent_drops")
                if self._sanitizer is not None:
                    self._san_settle(packet, "cpu_silent_drop")
                return
            self._incr("cpu_acl_drops")
            if self._sanitizer is not None:
                # Terminal here: the later drop-flag release only reclaims
                # reorder resources, it must not settle the packet again.
                self._san_settle(packet, "cpu_acl_drop")
            if packet.meta is not None and self.config.drop_flag_enabled:
                # Active drop flag: notify the NIC so reorder resources are
                # released without waiting for the 100 us timeout.
                self._schedule(self._tx_dma_ns, self.reorder.notify_drop, packet)
            # Without the flag (or under RSS) the drop is invisible to the
            # NIC -- PLB pays for it with head-of-line blocking.
            return
        if self.session_offload is not None:
            # Slow path forwarded a packet: maybe install the session.
            self.session_offload.note_cpu_packet(packet.flow)
        if self.pcie_link is not None:
            # TX crossing of the CPU->FPGA DMA.
            self.pcie_link.record(packet.size, split=packet.header_only)
        if packet.meta is not None:
            self._schedule(self._tx_dma_ns, self.reorder.writeback, packet)
        else:
            # RSS path: no reordering, straight to the deparser.
            self._schedule(
                self._tx_dma_ns + self._tx_post_reorder_ns, self._transmit, packet, "rss"
            )

    def _on_reorder_transmit(self, packet, outcome):
        if outcome is TxOutcome.RELEASED_DROP_FLAG or outcome is TxOutcome.DROPPED_PAYLOAD_GONE:
            self._incr(f"reorder_{outcome.value}")
            if (
                self._sanitizer is not None
                and outcome is TxOutcome.DROPPED_PAYLOAD_GONE
            ):
                # Drop-flag releases settled at the CPU ACL drop; a
                # payload-gone drop is this packet's first terminal stage.
                self._san_settle(packet, "payload_gone_drop")
            return
        self._schedule(self._tx_post_reorder_ns, self._transmit, packet, outcome)

    def _transmit(self, packet, outcome):
        if self._sanitizer is not None:
            self._sanitizer.ensure(
                packet.departure_ns is None, "packet-conservation",
                f"packet transmitted twice (first at t={packet.departure_ns})",
                uid=packet.uid, outcome=str(outcome),
            )
            self._sanitizer.ensure(
                packet.drop_reason is None, "packet-conservation",
                f"dropped packet leaked to the wire "
                f"(drop_reason={packet.drop_reason!r})",
                uid=packet.uid, outcome=str(outcome),
            )
            self._san_settle(packet, "tx")
        packet.departure_ns = self.sim._now
        self._incr("tx_packets")
        self.egress_fn(packet, outcome)

    # ------------------------------------------------------------------
    # Checkpoint / restore (live migration, repro.controlplane)
    # ------------------------------------------------------------------

    def checkpoint(self):
        """Plain-data snapshot of the pipeline's frozen state.

        Preconditions: the pod must be quiescent -- the reorder engine
        refuses to checkpoint non-drained queues, and the control plane
        is responsible for having emptied the core RX rings first.
        """
        return {
            "mode": self.config.mode,
            "counters": self.counters.checkpoint(),
            "reorder": self.reorder.checkpoint(),
            "dispatch": self.plb.checkpoint(),
            "rss": self.rss.checkpoint(),
            "limiter": (
                None if self.rate_limiter is None else self.rate_limiter.checkpoint()
            ),
            "offload": (
                None
                if self.session_offload is None
                else self.session_offload.checkpoint()
            ),
            "pkt_dir": self.pkt_dir.checkpoint(),
            "priority": self.priority.checkpoint(),
            "fpga_stalled": self._fpga_stalled,
            "heartbeat": self._heartbeat,
        }

    def restore(self, snapshot):
        """Reinstate a :meth:`checkpoint` into this (freshly built) pipeline."""
        if snapshot["mode"] != self.config.mode:
            self.config.mode = snapshot["mode"]
            self.pkt_dir.set_default_data_path(
                DeliveryPath.PLB if snapshot["mode"] == "plb" else DeliveryPath.RSS
            )
        self.counters.restore(snapshot["counters"])
        self.reorder.restore(snapshot["reorder"])
        self.plb.restore(snapshot["dispatch"])
        self.rss.restore(snapshot["rss"])
        if self.rate_limiter is not None and snapshot["limiter"] is not None:
            self.rate_limiter.restore(snapshot["limiter"])
        if self.session_offload is not None and snapshot["offload"] is not None:
            self.session_offload.restore(snapshot["offload"])
        self.pkt_dir.restore(snapshot["pkt_dir"])
        self.priority.restore(snapshot["priority"])
        self._fpga_stalled = snapshot["fpga_stalled"]
        self._heartbeat = snapshot["heartbeat"]
        # The sanitizer's conservation ledger is deliberately NOT part of
        # the snapshot: it is instrumentation, and carrying it would make
        # snapshot bytes (and thus freeze cost) depend on whether the
        # sanitizer is installed.  The fresh pipeline's ledger restarts
        # at zero and balances over post-restore traffic on its own.

    # ------------------------------------------------------------------
    # Control operations
    # ------------------------------------------------------------------

    def fallback_to_rss(self):
        """§4.1 remediation 5: dynamically switch the pod from PLB to RSS."""
        self.config.mode = "rss"
        self.pkt_dir.set_default_data_path(DeliveryPath.RSS)
        self.counters.incr("plb_fallbacks")

    def restore_plb(self):
        self.config.mode = "plb"
        self.pkt_dir.set_default_data_path(DeliveryPath.PLB)

    # ------------------------------------------------------------------
    # FPGA fault hooks
    # ------------------------------------------------------------------

    @property
    def fpga_stalled(self):
        return self._fpga_stalled

    def set_fpga_stalled(self, stalled=True):
        """Fault injection: freeze (or unfreeze) the FPGA pipeline."""
        self._fpga_stalled = bool(stalled)

    def heartbeat(self):
        """Liveness beacon polled by the FPGA watchdog.

        A healthy pipeline advances the counter on every poll; a stalled
        one returns the same value, which is how the watchdog detects it.
        """
        if not self._fpga_stalled:
            self._heartbeat += 1
        return self._heartbeat

    def recover_fpga(self):
        """Watchdog remediation: unstall and reset the pipeline.

        The reset drops all in-flight reorder state (§4.1: the watchdog
        reset is a full pipeline reload); in-flight packets surface later
        as stale-epoch writebacks and leave best-effort.  Returns the
        number of in-flight packets whose reorder state was dropped.
        """
        self._fpga_stalled = False
        dropped = self.reorder.reset()
        self.counters.incr("fpga_resets")
        self.counters.incr("fpga_reset_inflight_drops", dropped)
        return dropped
