"""FPGA session offloading (§7, "Future FPGA offloading plan").

The paper's plan for write-heavy stateful NFs: keep per-flow sessions on
the FPGA so established flows never touch the CPU -- PLB's heavy-hitter
tolerance without the cache-coherence collapse.  This module implements
that plan so the repo covers the roadmap feature:

* :class:`FpgaSessionOffload` -- the on-NIC session table and fast path,
  pluggable into :class:`~repro.core.nic.NicPipeline`.  The CPU remains
  the slow path: it processes a flow's first packets and *installs* the
  session; subsequent packets are forwarded entirely inside the FPGA at
  fixed latency.
* :func:`offload_throughput_mpps` -- the analytic companion to
  :class:`~repro.cpu.stateful.StatefulNfModel` for the ablation bench.

Sessions age out (hardware timer) and the table is capacity-bounded like
any on-chip structure.
"""

from repro.packet.flows import FlowKey
from repro.sim.units import SECOND, US

# Per-packet forwarding latency of the FPGA fast path (no DMA, no CPU):
# parser + session lookup + deparser.
FAST_PATH_LATENCY_NS = 2 * US

# Fast-path forwarding capacity of one pod's NIC slice (packets/s).  FPGA
# pipelines run at line rate; this is effectively "not the bottleneck".
DEFAULT_FAST_PATH_PPS = 100_000_000


class OffloadedSession:
    """One FPGA-resident session."""

    __slots__ = ("flow", "installed_ns", "last_hit_ns", "hits")

    def __init__(self, flow, now_ns):
        self.flow = flow
        self.installed_ns = now_ns
        self.last_hit_ns = now_ns
        self.hits = 0


class FpgaSessionOffload:
    """On-NIC session table + fast path.

    Parameters:
        sim: the simulator.
        capacity: session-table entries (on-chip memory bound).
        idle_timeout_ns: hardware aging: sessions idle longer are evicted.
        install_after_packets: the CPU installs the session once it has
            seen this many packets of the flow (connection setup must
            complete on the slow path first).
    """

    def __init__(
        self,
        sim,
        capacity=65536,
        idle_timeout_ns=10 * SECOND,
        install_after_packets=2,
        fast_path_pps=DEFAULT_FAST_PATH_PPS,
    ):
        self.sim = sim
        self.capacity = capacity
        self.idle_timeout_ns = idle_timeout_ns
        self.install_after_packets = install_after_packets
        self.fast_path_pps = fast_path_pps
        self._sessions = {}
        self._cpu_seen = {}
        self.fast_path_hits = 0
        self.slow_path_misses = 0
        self.installs = 0
        self.install_rejections = 0
        self.evictions = 0

    def __len__(self):
        return len(self._sessions)

    @property
    def hit_rate(self):
        total = self.fast_path_hits + self.slow_path_misses
        return self.fast_path_hits / total if total else 0.0

    # -- data path ---------------------------------------------------------

    def lookup(self, flow):
        """Fast-path check at ingress; returns True on an offload hit."""
        session = self._sessions.get(flow)
        now = self.sim.now
        if session is None:
            self.slow_path_misses += 1
            return False
        if now - session.last_hit_ns > self.idle_timeout_ns:
            # Hardware aging: the timer expired this entry.
            del self._sessions[flow]
            self.evictions += 1
            self.slow_path_misses += 1
            return False
        session.last_hit_ns = now
        session.hits += 1
        self.fast_path_hits += 1
        return True

    def note_cpu_packet(self, flow):
        """Called when the CPU (slow path) forwards a packet of ``flow``.

        Once the flow has cleared ``install_after_packets``, the CPU
        installs the session into the FPGA.  Returns True if an install
        happened.
        """
        if flow in self._sessions:
            return False
        seen = self._cpu_seen.get(flow, 0) + 1
        if seen < self.install_after_packets:
            self._cpu_seen[flow] = seen
            return False
        self._cpu_seen.pop(flow, None)
        return self.install(flow)

    def install(self, flow):
        """Install a session; returns False when the table is full."""
        if flow in self._sessions:
            return True
        if len(self._sessions) >= self.capacity:
            if not self._evict_one_idle():
                self.install_rejections += 1
                return False
        self._sessions[flow] = OffloadedSession(flow, self.sim.now)
        self.installs += 1
        return True

    def remove(self, flow):
        """Explicit teardown (CPU saw FIN/RST or a config change)."""
        return self._sessions.pop(flow, None) is not None

    def _evict_one_idle(self):
        """Evict the stalest session if it is past the idle timeout."""
        now = self.sim.now
        stalest = None
        for session in self._sessions.values():
            if stalest is None or session.last_hit_ns < stalest.last_hit_ns:
                stalest = session
        if stalest is None or now - stalest.last_hit_ns <= self.idle_timeout_ns:
            return False
        del self._sessions[stalest.flow]
        self.evictions += 1
        return True

    def checkpoint(self):
        """Plain-data snapshot of the on-NIC session table.

        Sessions are emitted in table insertion order so the restored
        dict iterates identically -- idle-eviction ties break on
        iteration order, and a migrated table must evict the same entry
        the original would have.
        """
        return {
            "sessions": [
                [list(flow), session.installed_ns, session.last_hit_ns, session.hits]
                for flow, session in self._sessions.items()
            ],
            "cpu_seen": [[list(flow), seen] for flow, seen in self._cpu_seen.items()],
            "fast_path_hits": self.fast_path_hits,
            "slow_path_misses": self.slow_path_misses,
            "installs": self.installs,
            "install_rejections": self.install_rejections,
            "evictions": self.evictions,
        }

    def restore(self, snapshot):
        """Reinstate a :meth:`checkpoint` in place."""
        self._sessions = {}
        for flow_fields, installed_ns, last_hit_ns, hits in snapshot["sessions"]:
            flow = FlowKey(*flow_fields)
            session = OffloadedSession(flow, installed_ns)
            session.last_hit_ns = last_hit_ns
            session.hits = hits
            self._sessions[flow] = session
        self._cpu_seen = {
            FlowKey(*fields): seen for fields, seen in snapshot["cpu_seen"]
        }
        self.fast_path_hits = snapshot["fast_path_hits"]
        self.slow_path_misses = snapshot["slow_path_misses"]
        self.installs = snapshot["installs"]
        self.install_rejections = snapshot["install_rejections"]
        self.evictions = snapshot["evictions"]

    def expire_idle(self):
        """Bulk aging sweep; returns evicted count (ops/telemetry hook)."""
        now = self.sim.now
        expired = [
            flow
            for flow, session in self._sessions.items()
            if now - session.last_hit_ns > self.idle_timeout_ns
        ]
        for flow in expired:
            del self._sessions[flow]
        self.evictions += len(expired)
        return len(expired)


def offload_throughput_mpps(
    nf_model,
    cores,
    offload_hit_rate,
    fast_path_pps=DEFAULT_FAST_PATH_PPS,
):
    """Analytic throughput of a write-heavy NF with session offload.

    A fraction ``offload_hit_rate`` of packets is absorbed by the FPGA
    fast path; the CPU only sees the remainder (session setups and table
    misses), each processed with core-local state (the FPGA owns the
    per-session counters, so no cross-core coherence traffic remains).
    The combined rate is capped by the fast path's line rate.
    """
    if not 0.0 <= offload_hit_rate <= 1.0:
        raise ValueError(f"hit rate out of range: {offload_hit_rate}")
    cpu_mpps = nf_model.throughput_mpps(cores, "plb_local")
    if offload_hit_rate == 1.0:
        return fast_path_pps / 1e6
    # CPU throughput bounds the miss stream; total = misses / miss_share.
    total = cpu_mpps / (1.0 - offload_hit_rate)
    return min(total, fast_path_pps / 1e6)
