"""GW pod runtime and the Albatross server: the library's top-level API.

A :class:`GwPodRuntime` is one containerized gateway: data cores running a
service chain, ctrl cores (modelled via the priority path + BGP speaker),
and a slice of the FPGA NIC pipeline.  An :class:`AlbatrossServer` hosts
several pods on a dual-NUMA machine, placing each pod's cores and memory
on one node (the §7 lesson) unless an experiment asks for cross-NUMA
placement.

Quick example::

    from repro.sim import Simulator, RngRegistry, SECOND
    from repro.core import AlbatrossServer, PodConfig

    sim = Simulator()
    server = AlbatrossServer(sim, RngRegistry(seed=1))
    pod = server.add_pod(PodConfig(name="vpc-gw", data_cores=8))
    # feed pod.ingress(packet) from a workload, then sim.run_until(...)
"""

from repro.core.nic import NicPipeline, NicPipelineConfig
from repro.core.plb.reorder import ReorderQueueConfig
from repro.cpu.cache import SharedL3Cache
from repro.cpu.core import CpuCore, Verdict
from repro.cpu.numa import NumaTopology
from repro.cpu.service import MemoryTimings, ServiceChain, standard_services
from repro.metrics.histogram import LatencyHistogram
from repro.sim.rng import rng_state, set_rng_state
from repro.sim.units import SECOND


def default_reorder_queue_count(data_cores):
    """1-8 reorder queues, proportional to the pod's data cores (§4.1).

    A 44-data-core production pod gets 4 queues; a 20-core pod gets 2.
    """
    return max(1, min(8, data_cores // 10))


class PodConfig:
    """Declarative description of one GW pod."""

    def __init__(
        self,
        name,
        data_cores,
        ctrl_cores=2,
        service="VPC-Internet",
        mode="plb",
        reorder_queues=None,
        reorder_depth=4096,
        rate_limiter=None,
        drop_flag_enabled=True,
        header_only=False,
        meta_placement=None,
        rx_capacity=1024,
        acl_drop_probability=0.0,
        silent_drop_probability=0.0,
        jitter=None,
        numa_node=None,
        memory_node=None,
        assumed_hit_rate=0.35,
        table_scale=None,
        memory_frequency_mhz=4800,
        custom_service=None,
    ):
        if data_cores < 1:
            raise ValueError("a pod needs at least one data core")
        self.name = name
        self.data_cores = data_cores
        self.ctrl_cores = ctrl_cores
        self.service = service
        self.mode = mode
        self.reorder_queues = (
            reorder_queues
            if reorder_queues is not None
            else default_reorder_queue_count(data_cores)
        )
        self.reorder_depth = reorder_depth
        self.rate_limiter = rate_limiter
        self.drop_flag_enabled = drop_flag_enabled
        self.header_only = header_only
        self.meta_placement = meta_placement
        self.rx_capacity = rx_capacity
        self.acl_drop_probability = acl_drop_probability
        self.silent_drop_probability = silent_drop_probability
        self.jitter = jitter
        self.numa_node = numa_node
        self.memory_node = memory_node
        self.assumed_hit_rate = assumed_hit_rate
        self.table_scale = table_scale
        self.memory_frequency_mhz = memory_frequency_mhz
        self.custom_service = custom_service

    @property
    def total_cores(self):
        return self.data_cores + self.ctrl_cores


class GwPodRuntime:
    """A running GW pod: cores + NIC pipeline slice + metrics."""

    def __init__(self, sim, config, core_ids, rng, l3_cache=None, numa_factor=1.0):
        self.sim = sim
        self.config = config
        self.rng = rng
        self.latency_histogram = LatencyHistogram()
        # Optional per-latency callback (the telemetry recorder binds a
        # per-window histogram's record here); sees exactly the stream
        # that feeds latency_histogram.  Not checkpointed: the recorder
        # that owns the tap checkpoints its own histograms.
        self.latency_tap = None
        self.outcomes = {}
        self.crashed = False
        self._started_ns = sim.now

        if config.custom_service is not None:
            service = config.custom_service
        else:
            services = standard_services()
            if config.service not in services:
                raise ValueError(
                    f"unknown service {config.service!r}; choose from {sorted(services)}"
                )
            service = services[config.service]
        timings = MemoryTimings(memory_frequency_mhz=config.memory_frequency_mhz)
        if l3_cache is not None:
            scale = config.table_scale if config.table_scale is not None else 1.0
            # ServiceChain's only mutable state is a bounded memoization
            # of a deterministic per-flow address function; a rebuilt
            # chain re-derives identical entries on demand.
            self.chain = ServiceChain(  # lint: disable=SNAP003(only mutable state is a pure memo cache of a deterministic address function)
                service,
                cache=l3_cache,
                timings=timings,
                table_scale=scale,
            )
        else:
            self.chain = ServiceChain(  # lint: disable=SNAP003(only mutable state is a pure memo cache of a deterministic address function)
                service,
                timings=timings,
                assumed_hit_rate=config.assumed_hit_rate,
            )

        nic_config = NicPipelineConfig(
            mode=config.mode,
            reorder=ReorderQueueConfig(config.reorder_queues, config.reorder_depth),
            rate_limiter=config.rate_limiter,
            drop_flag_enabled=config.drop_flag_enabled,
            header_only=config.header_only,
            **(
                {"meta_placement": config.meta_placement}
                if config.meta_placement is not None
                else {}
            ),
        )

        # Service time inflates for cross-NUMA placement; the HEAD
        # meta-placement penalty (33.6% copy cost) is applied after the
        # NIC pipeline computes its throughput factor below.
        speed_factor = numa_factor

        self.cores = []
        self.nic = None  # assigned below; cores need the completion callback

        def completion(packet, verdict, core):
            self.nic.on_cpu_completion(packet, verdict, core)

        for core_id in core_ids[: config.data_cores]:
            # Cores are only checkpointed quiescent (idle, empty RX ring,
            # no pending stall), so their transient scheduling state has
            # nothing to capture; the durable per-core counters live in
            # core.stats, which checkpoint() snapshots below.
            core = CpuCore(  # lint: disable=SNAP003(cores checkpoint quiescent; durable counters live in core.stats, captured by the pod snapshot)
                sim,
                core_id,
                self.chain,
                completion,
                verdict_fn=self._verdict,
                jitter=config.jitter,
                rx_capacity=config.rx_capacity,
                speed_factor=speed_factor,
            )
            self.cores.append(core)

        self.nic = NicPipeline(
            sim, self.cores, nic_config, self._on_egress, protocol_fn=self._on_protocol
        )
        # Meta placement penalty applies to CPU processing, not the NIC.
        if self.nic.cpu_throughput_factor != 1.0:
            for core in self.cores:
                core.speed_factor /= self.nic.cpu_throughput_factor
        # Test-facing observability: live Packet objects handed up by the
        # priority path.  Not plain data, and the path is idle whenever a
        # quiescent pod checkpoints; the delivered *count* is captured by
        # the NIC snapshot.
        self.protocol_delivered = []  # lint: disable=SNAP001(observability log of live Packet objects; delivered count is captured by the NIC snapshot)

    # -- behaviour hooks -------------------------------------------------

    def _verdict(self, packet):
        roll = self.rng.random()
        if roll < self.config.acl_drop_probability:
            return Verdict.DROP_ACL
        if roll < self.config.acl_drop_probability + self.config.silent_drop_probability:
            return Verdict.DROP_SILENT
        return Verdict.FORWARD

    def _on_egress(self, packet, outcome):
        latency = packet.latency_ns
        if latency is not None and packet.drop_reason is None:
            self.latency_histogram.record(latency)
            tap = self.latency_tap
            if tap is not None:
                tap(latency)
        try:
            key = outcome.value
        except AttributeError:
            key = str(outcome)
        outcomes = self.outcomes
        try:
            outcomes[key] += 1
        except KeyError:
            outcomes[key] = 1

    def _on_protocol(self, packet):
        self.protocol_delivered.append((self.sim.now, packet))

    # -- public API --------------------------------------------------------

    def ingress(self, packet):
        """Feed a packet into the pod's NIC slice."""
        if self.crashed:
            # The container is gone; anything still routed here blackholes
            # until BGP converges away from the dead pod.
            packet.drop_reason = "pod_crashed"
            self.nic.counters.incr("pod_crashed_drops")
            return
        self.nic.ingress(packet)

    def crash(self):
        """Fault injection: the container dies mid-flight.

        Every data core goes offline (in-queue packets are lost with the
        container) and subsequent ingress blackholes.  Recovery is the
        container scheduler's job: reschedule a replacement pod and let
        BGP/BFD converge -- see ``repro.faults``.
        """
        self.crashed = True
        for core in self.cores:
            core.fail()

    def restore(self):
        """Bring the (restarted) pod back into service."""
        self.crashed = False
        for core in self.cores:
            core.restore()

    # -- checkpoint / restore (live migration, repro.controlplane) ---------

    def in_flight(self):
        """Data-plane packets currently inside the pod (counter-based)."""
        return self.nic.in_flight()

    def quiescent(self):
        """True when the pod holds no packet state anywhere.

        This is the drain-complete predicate for live migration: no
        packet between ingress and egress, every core idle with an empty
        RX ring, every reorder queue drained and the protocol priority
        path quiet.  Only a quiescent pod can be checkpointed.
        """
        if self.nic.in_flight() != 0:
            return False
        for core in self.cores:
            if core.busy or len(core.rx_queue) != 0:
                return False
        reorder = self.nic.reorder
        for ordq in range(reorder.queue_count):
            if reorder.occupancy(ordq) != 0:
                return False
        return self.nic.priority.idle

    def checkpoint(self):
        """Plain-scalar snapshot of every stateful component in the pod.

        The result is JSON-serializable (dicts/lists/str/int/float/bool/
        None all the way down) and, paired with :meth:`restore_state` on a
        freshly built pod of the same shape, byte-identically resumes the
        frozen pod -- including every RNG stream position, so the restored
        pod's future random draws match what the original would have
        produced (the checkpoint-RNG regression tests pin this down).
        """
        return {
            "name": self.config.name,
            "crashed": self.crashed,
            "outcomes": dict(self.outcomes),
            "latency": self.latency_histogram.checkpoint(),
            "rng": rng_state(self.rng),
            "cores": [core.stats.checkpoint() for core in self.cores],
            "nic": self.nic.checkpoint(),
        }

    def restore_state(self, snapshot):
        """Reinstate a :meth:`checkpoint` into this (freshly built) pod.

        The pod must have the same shape as the checkpointed one (core
        count, reorder queue count); NUMA placement is free to differ --
        that is the whole point of migrating.
        """
        if len(snapshot["cores"]) != len(self.cores):
            raise ValueError(
                f"checkpoint has {len(snapshot['cores'])} cores, "
                f"pod has {len(self.cores)}"
            )
        if snapshot["name"] != self.config.name:
            raise ValueError(
                f"checkpoint is for pod {snapshot['name']!r}, cannot "
                f"restore into {self.config.name!r}"
            )
        self.crashed = snapshot["crashed"]
        self.outcomes = dict(snapshot["outcomes"])
        self.latency_histogram.restore(snapshot["latency"])
        set_rng_state(self.rng, snapshot["rng"])
        for core, state in zip(self.cores, snapshot["cores"]):
            core.stats.restore(state)
        self.nic.restore(snapshot["nic"])

    @property
    def counters(self):
        return self.nic.counters

    @property
    def reorder_stats(self):
        return self.nic.reorder.stats

    def transmitted(self):
        return self.nic.counters.get("tx_packets")

    def throughput_mpps(self, window_ns=None):
        """Achieved packet rate over the pod's lifetime (or a window)."""
        elapsed = window_ns if window_ns is not None else self.sim.now - self._started_ns
        if elapsed <= 0:
            return 0.0
        return self.transmitted() * 1e3 / elapsed

    def core_utilizations(self, window_ns):
        return [core.stats.utilization(window_ns) for core in self.cores]

    def expected_capacity_mpps(self):
        """Nominal saturated capacity: data cores x per-core rate."""
        return self.config.data_cores * self.chain.per_core_mpps()


class AlbatrossServer:
    """A dual-NUMA Albatross server hosting containerized gateways.

    Parameters:
        sim: the simulator.
        rngs: an :class:`~repro.sim.RngRegistry`.
        topology: NUMA topology (defaults to 2 x 48 cores).
        cache_mode: ``"analytic"`` (expected hit rate; fast) or
            ``"simulated"`` (shared LRU L3 per node; Fig. 4/5 mode).
        l3_bytes: per-node L3 capacity for simulated mode.
    """

    POD_READY_SECONDS = 10  # container elasticity (Tab. 6)

    def __init__(self, sim, rngs, topology=None, cache_mode="analytic", l3_bytes=None):
        self.sim = sim
        self.rngs = rngs
        self.topology = topology if topology is not None else NumaTopology()
        self.cache_mode = cache_mode
        self.pods = {}
        self._free_cores = {
            node.node_id: list(node.core_ids) for node in self.topology.nodes
        }
        self._l3 = {}
        if cache_mode == "simulated":
            capacity = l3_bytes if l3_bytes is not None else 200 * (1 << 20)
            for node in self.topology.nodes:
                self._l3[node.node_id] = SharedL3Cache(capacity)
        elif cache_mode != "analytic":
            raise ValueError(f"unknown cache_mode {cache_mode!r}")

    def l3_cache(self, node_id):
        return self._l3.get(node_id)

    def free_cores(self, node_id):
        return len(self._free_cores[node_id])

    def _pick_node(self, config):
        if config.numa_node is not None:
            if len(self._free_cores[config.numa_node]) < config.total_cores:
                raise ValueError(
                    f"NUMA node {config.numa_node} lacks {config.total_cores} cores"
                )
            return config.numa_node
        for node_id, free in self._free_cores.items():
            if len(free) >= config.total_cores:
                return node_id
        raise ValueError(f"no NUMA node has {config.total_cores} free cores")

    def add_pod(self, config):
        """Create and start a GW pod; returns its :class:`GwPodRuntime`."""
        if config.name in self.pods:
            raise ValueError(f"duplicate pod name {config.name!r}")
        node_id = self._pick_node(config)
        core_ids = [self._free_cores[node_id].pop(0) for _ in range(config.total_cores)]
        memory_node = config.memory_node if config.memory_node is not None else node_id
        numa_factor = self.topology.speed_factor(
            node_id, memory_node, lookup_heavy=True
        )
        pod = GwPodRuntime(
            self.sim,
            config,
            core_ids,
            self.rngs.stream(f"pod.{config.name}"),
            l3_cache=self._l3.get(memory_node),
            numa_factor=numa_factor,
        )
        pod.numa_node = node_id
        pod.memory_node = memory_node
        pod.allocated_core_ids = core_ids
        self.pods[config.name] = pod
        return pod

    def remove_pod(self, name):
        """Tear a pod down and return its cores to the free pool."""
        pod = self.pods.pop(name)
        self._free_cores[pod.numa_node].extend(pod.allocated_core_ids)
        return pod

    def pod_ready_delay_ns(self):
        """Container elasticity: a new pod is serving in ~10 seconds."""
        return self.POD_READY_SECONDS * SECOND

    def total_throughput_mpps(self):
        return sum(pod.throughput_mpps() for pod in self.pods.values())
