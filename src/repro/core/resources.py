"""FPGA latency and resource accounting (Tab. 4 and Tab. 5).

The paper's FPGA: 912,800 LUTs and 265 Mbit of BRAM per card.  Tab. 4
gives per-module RX/TX latency; Tab. 5 gives per-module LUT/BRAM shares.
This module carries those constants, a latency model for the NIC pipeline,
and a bottom-up BRAM estimator for the PLB structures (FIFO + BUF +
BITMAP) and the rate limiter, which the tests check against Tab. 5's
ballpark.
"""

from repro.sim.units import US

FPGA_TOTAL_LUTS = 912_800
FPGA_TOTAL_BRAM_MBIT = 265

# Tab. 4: per-module (RX, TX) latency in microseconds.
NIC_MODULE_LATENCY_US = {
    "basic_pipeline": (0.58, 0.84),
    "overload_detection": (0.10, 0.0),
    "plb": (0.05, 0.35),
    "dma": (3.17, 2.98),
}

# Tab. 5: per-module (LUT %, BRAM %) consumption.
NIC_MODULE_RESOURCES_PCT = {
    "basic_pipeline": (42.9, 38.2),
    "overload_detection": (2.0, 0.0),
    "plb": (12.6, 5.0),
    "dma": (2.5, 1.3),
}


class NicLatencyModel:
    """Per-direction latency budget assembled from Tab. 4's modules."""

    def __init__(self, modules=None):
        self.modules = dict(NIC_MODULE_LATENCY_US if modules is None else modules)

    def rx_ns(self, include=None):
        return self._sum(0, include)

    def tx_ns(self, include=None):
        return self._sum(1, include)

    def _sum(self, direction, include):
        names = self.modules if include is None else include
        total_us = sum(self.modules[name][direction] for name in names)
        return int(round(total_us * US))

    def module_ns(self, name, direction):
        index = 0 if direction == "rx" else 1
        return int(round(self.modules[name][index] * US))

    @property
    def round_trip_ns(self):
        """Total NIC-added latency (RX + TX, ~8 us in the paper)."""
        return self.rx_ns() + self.tx_ns()


class FpgaResourceModel:
    """Resource accounting against the card's LUT/BRAM budget."""

    def __init__(
        self,
        total_luts=FPGA_TOTAL_LUTS,
        total_bram_mbit=FPGA_TOTAL_BRAM_MBIT,
        module_pct=None,
    ):
        self.total_luts = total_luts
        self.total_bram_mbit = total_bram_mbit
        self.module_pct = dict(
            NIC_MODULE_RESOURCES_PCT if module_pct is None else module_pct
        )

    def luts_used(self, module):
        return int(self.total_luts * self.module_pct[module][0] / 100)

    def bram_mbit_used(self, module):
        return self.total_bram_mbit * self.module_pct[module][1] / 100

    def totals(self):
        """(LUT %, BRAM %) summed over all modules (Tab. 5 bottom row)."""
        lut = sum(pct[0] for pct in self.module_pct.values())
        bram = sum(pct[1] for pct in self.module_pct.values())
        return lut, bram

    def headroom(self):
        """(LUT %, BRAM %) left for the future offloads of §7."""
        lut, bram = self.totals()
        return 100.0 - lut, 100.0 - bram

    # -- bottom-up estimates -------------------------------------------

    @staticmethod
    def plb_bram_bits(
        queue_count=8,
        depth=4096,
        reorder_info_bits=64,     # PSN + timestamp
        bitmap_entry_bits=13,     # valid bit + psn[11:0]
        buf_entry_bits=320,       # meta + packet-header descriptor in BUF
    ):
        """BRAM bits needed by the PLB structures for one pod complement."""
        per_queue = depth * (reorder_info_bits + bitmap_entry_bits + buf_entry_bits)
        return queue_count * per_queue

    @staticmethod
    def ratelimiter_sram_bytes(limiter):
        """Delegates to the limiter's own accounting (2 MB target)."""
        return limiter.sram_bytes()

    def plb_bram_pct(self, **kwargs):
        bits = self.plb_bram_bits(**kwargs)
        return 100.0 * bits / (self.total_bram_mbit * 1_000_000)
