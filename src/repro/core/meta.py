"""The PLB meta header (§4.1).

``plb_dispatch`` tags every sprayed packet with a meta header carrying the
packet sequence number (PSN), the order-queue index and an ingress
timestamp; the CPU carries it through processing, may set the **drop flag**
(to let the NIC release reorder resources for ACL/rate-limit drops), and
returns it with the packet for reordering.

The header has a real wire format (16 bytes) so the codec can be exercised
byte-for-byte, and the module also carries the placement cost model behind
the §7 lesson: stashing the meta in the packet *head* room forces a data
copy in the DPDK driver that costs ~33.6% of throughput, while the *tail*
placement is free because gateways never touch packet tails.
"""

import enum
import struct

META_WIRE_BYTES = 16
_META_MAGIC = 0xA1B2
_FLAG_DROP = 0x01
_FLAG_HEADER_ONLY = 0x02

# Measured throughput penalty of head placement (private-room copy), §7.
HEAD_PLACEMENT_THROUGHPUT_FACTOR = 1.0 - 0.336


class MetaPlacement(enum.Enum):
    """Where the meta header rides on the packet."""

    HEAD = "head"  # packet head room / rte_mbuf private room: costs a copy
    TAIL = "tail"  # appended after the payload: free (chosen by the paper)


class PlbMeta:
    """Meta header contents.

    Attributes:
        psn: full-width packet sequence number (wire carries 32 bits; the
            reorder legal check only inspects the low 12).
        ordq: order-preserving queue index within the pod.
        timestamp_ns: ingress timestamp for timeout determination.
        drop: drop flag set by the GW pod on explicit drops.
        header_only: set when the payload stayed in the NIC buffer.
        epoch: reorder-engine generation at admission.  A watchdog pipeline
            reset bumps the engine's epoch; packets tagged with an older
            epoch are handled best-effort on writeback so their stale PSNs
            can never alias into (and block or misorder) the new window.
            Not part of the 16-byte wire format: the FPGA keeps the
            generation in the BUF slot, not on the wire.
    """

    __slots__ = ("psn", "ordq", "timestamp_ns", "drop", "header_only", "epoch")

    def __init__(self, psn, ordq, timestamp_ns, drop=False, header_only=False, epoch=0):
        self.psn = psn
        self.ordq = ordq
        self.timestamp_ns = timestamp_ns
        self.drop = drop
        self.header_only = header_only
        self.epoch = epoch

    @property
    def psn12(self):
        """The low 12 bits used by the legal check."""
        return self.psn & 0xFFF

    def pack(self):
        """Encode to the 16-byte wire format."""
        flags = (_FLAG_DROP if self.drop else 0) | (
            _FLAG_HEADER_ONLY if self.header_only else 0
        )
        # magic(2) ordq(1) flags(1) psn(4) timestamp(8)
        return struct.pack(
            ">HBBIQ",
            _META_MAGIC,
            self.ordq & 0xFF,
            flags,
            self.psn & 0xFFFFFFFF,
            self.timestamp_ns & 0xFFFFFFFFFFFFFFFF,
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < META_WIRE_BYTES:
            raise ValueError(f"truncated meta header ({len(data)} bytes)")
        magic, ordq, flags, psn, timestamp = struct.unpack_from(">HBBIQ", data, 0)
        if magic != _META_MAGIC:
            raise ValueError(f"bad meta magic 0x{magic:04x}")
        return cls(
            psn,
            ordq,
            timestamp,
            drop=bool(flags & _FLAG_DROP),
            header_only=bool(flags & _FLAG_HEADER_ONLY),
        )

    def __eq__(self, other):
        return isinstance(other, PlbMeta) and all(
            getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
        )

    def __repr__(self):
        return (
            f"PlbMeta(psn={self.psn}, ordq={self.ordq}, "
            f"ts={self.timestamp_ns}, drop={self.drop})"
        )


def placement_throughput_factor(placement):
    """Relative forwarding throughput for a meta placement strategy.

    TAIL is the baseline (1.0); HEAD pays the 33.6% private-room copy
    penalty the paper measured.
    """
    if placement is MetaPlacement.TAIL:
        return 1.0
    if placement is MetaPlacement.HEAD:
        return HEAD_PLACEMENT_THROUGHPUT_FACTOR
    raise ValueError(f"unknown placement {placement!r}")


def attach_meta_tail(frame, meta):
    """Append the packed meta after the payload (the production scheme)."""
    return frame + meta.pack()


def detach_meta_tail(frame):
    """Split a tail-tagged frame into (original_frame, meta)."""
    if len(frame) < META_WIRE_BYTES:
        raise ValueError("frame shorter than a meta header")
    return frame[:-META_WIRE_BYTES], PlbMeta.unpack(frame[-META_WIRE_BYTES:])
