"""Protocol-packet prioritization (§4.3, second GOP technique).

Protocol packets (BGP, BFD) ride dedicated RX/TX priority queues so that
data-plane saturation cannot drop them.  Losing three consecutive BFD
probes tears down a link, so even a few lost protocol packets during an
overload can disconnect every container on the gateway -- the priority
path makes that impossible as long as the ctrl cores are alive.
"""

from repro.cpu.queues import PacketQueue
from repro.sim.units import US


class PriorityQueueManager:
    """Dedicated priority path: queue + ctrl-core service loop.

    Parameters:
        sim: the simulator.
        deliver_fn: called as ``deliver_fn(packet)`` when a protocol packet
            has been processed by a ctrl core (e.g. handed to the pod's BGP
            speaker / BFD endpoint).
        service_ns: ctrl-core processing time per protocol packet.
        capacity: priority RX ring size (generously provisioned; protocol
            traffic volume is tiny).
    """

    def __init__(self, sim, deliver_fn, service_ns=2 * US, capacity=4096):
        self.sim = sim
        self.deliver_fn = deliver_fn
        self.service_ns = service_ns
        self.queue = PacketQueue(capacity, name="priority-rx")
        self.delivered = 0
        # Transient service-loop flag; the priority path is idle (not
        # busy, queue empty) whenever a quiescent pod is checkpointed.
        self._busy = False  # lint: disable=SNAP001(transient service flag; priority path is idle at quiescent checkpoints)

    @property
    def dropped(self):
        """Priority-queue overflow drops (should stay zero in any sane run)."""
        return self.queue.dropped

    @property
    def idle(self):
        """True when no protocol packet is queued or being serviced."""
        return not self._busy and len(self.queue) == 0

    def enqueue(self, packet):
        """Admit a protocol packet to the priority path."""
        accepted = self.queue.push(packet)
        if accepted and not self._busy:
            self._start_next()
        return accepted

    def _start_next(self):
        packet = self.queue.pop()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self.sim.schedule(self.service_ns, self._finish, packet)

    def _finish(self, packet):
        self.delivered += 1
        self.deliver_fn(packet)
        self._start_next()

    def checkpoint(self):
        """Plain-data snapshot; requires the priority path to be idle."""
        return {
            "delivered": self.delivered,
            "queue": self.queue.checkpoint(),
        }

    def restore(self, snapshot):
        self.delivered = snapshot["delivered"]
        self.queue.restore(snapshot["queue"])
