"""``plb_dispatch``: packet spray with order bookkeeping (§4.1, Fig. 3).

Ingress packets are sprayed across the pod's RX data queues round-robin.
Before a packet leaves for the CPU, dispatch:

1. selects an order-preserving queue by hashing the 5-tuple
   (``get_ordq_idx``) -- so all packets of one flow share a FIFO and
   per-flow order can be verified at egress;
2. claims the next PSN within that queue and appends the reorder info
   (PSN + arrival timestamp) to the FIFO tail;
3. tags the packet with the :class:`~repro.core.meta.PlbMeta` header.

If the selected FIFO is full the packet is dropped at ingress: the queue
length (4K) is provisioned to absorb 100 µs of packets at 40 Mpps, so a
full FIFO means a heavy hitter has exceeded what this queue can tolerate
(trade-off C1 in the paper).
"""

from repro.core.meta import PlbMeta
from repro.packet.hashing import crc32_flow_hash

ORDQ_HASH_SEED = 0x0DD0


class PlbDispatcher:
    """Sprays packets over cores and feeds the reorder engine's FIFOs.

    Parameters:
        cores: the pod's data cores, in RX-queue order.
        reorder: the pod's :class:`~repro.core.plb.reorder.ReorderEngine`.
        now_fn: callable returning the current time in ns (the simulator
            clock); timestamps feed the reorder timeout logic.
    """

    __slots__ = (
        "cores",
        "reorder",
        "now_fn",
        "_rr_index",
        "dispatched",
        "fifo_full_drops",
        "dead_core_drops",
        "_ordq_cache",
    )

    def __init__(self, cores, reorder, now_fn):
        if not cores:
            raise ValueError("PLB needs at least one core")
        self.cores = list(cores)
        self.reorder = reorder
        self.now_fn = now_fn
        self._rr_index = 0
        self.dispatched = 0
        self.fifo_full_drops = 0
        self.dead_core_drops = 0
        # Flow -> order queue memo (same bounded-cache pattern as the RSS
        # Toeplitz cache): the CRC+mix is pure in the 5-tuple, and flow
        # populations are tiny next to the cap.
        self._ordq_cache = {}  # lint: disable=SNAP001(pure memo of the CRC ordq hash; a rebuilt cache re-derives identical entries)

    def ordq_index(self, flow):
        """``get_ordq_idx``: 5-tuple hash onto the pod's order queues."""
        ordq = self._ordq_cache.get(flow)
        if ordq is None:
            ordq = crc32_flow_hash(flow, seed=ORDQ_HASH_SEED) % self.reorder.queue_count
            if len(self._ordq_cache) < 1_000_000:
                self._ordq_cache[flow] = ordq
        return ordq

    def dispatch(self, packet, header_only=False):
        """Tag and spray one packet.

        Returns the selected core, or None if the packet was dropped
        (order queue full, or every core offline).  On success the packet
        carries a populated ``meta`` and its reorder info is queued.

        Failed cores are skipped: the FPGA observes a dead doorbell and
        sprays around it, so PLB absorbs a lost core with the survivors
        (RSS, hash-pinned, cannot -- that contrast is the
        core-stall-plb-vs-rss fault scenario).
        """
        core, next_index = self._next_available_core()
        if core is None:
            self.dead_core_drops += 1
            packet.drop_reason = "no_available_core"
            return None
        now = self.now_fn()
        ordq = self.ordq_index(packet.flow)
        psn = self.reorder.admit(ordq, now)
        if psn is None:
            # Rotation is not advanced on a drop: the slot stays with this
            # core for the next successful dispatch.
            self.fifo_full_drops += 1
            packet.drop_reason = "reorder_fifo_full"
            return None
        self._rr_index = next_index
        packet.meta = PlbMeta(
            psn=psn, ordq=ordq, timestamp_ns=now, header_only=header_only,
            epoch=self.reorder.epoch,
        )
        packet.header_only = header_only
        self.dispatched += 1
        return core

    def _next_available_core(self):
        """Next online core in rotation, as ``(core, index_after_it)``.

        The caller commits ``index_after_it`` to ``_rr_index`` only once
        the dispatch succeeds, so drops do not advance the rotation.
        """
        cores = self.cores
        count = len(cores)
        index = self._rr_index
        for _ in range(count):
            core = cores[index]
            index += 1
            if index == count:
                index = 0
            # Equivalent to the `available` property, without the
            # descriptor call; fake cores without the flag are available.
            if not getattr(core, "_failed", False):
                return core, index
        return None, self._rr_index

    def checkpoint(self):
        """Plain-data snapshot: the rotation pointer and drop counters.

        The flow->ordq memo is **not** carried: it is a pure function of
        the 5-tuple and the queue count, so a restored dispatcher
        recomputes identical values on demand.
        """
        return {
            "rr_index": self._rr_index,
            "dispatched": self.dispatched,
            "fifo_full_drops": self.fifo_full_drops,
            "dead_core_drops": self.dead_core_drops,
        }

    def restore(self, snapshot):
        """Reinstate a :meth:`checkpoint`; the spray rotation continues
        from the frozen pointer (modulo the new core count)."""
        self._rr_index = snapshot["rr_index"] % len(self.cores)
        self.dispatched = snapshot["dispatched"]
        self.fifo_full_drops = snapshot["fifo_full_drops"]
        self.dead_core_drops = snapshot["dead_core_drops"]

    def spray_counts(self):
        """Packets-per-core counter snapshot (diagnostics for Fig. 8)."""
        return {core.core_id: core.stats.processed for core in self.cores}
