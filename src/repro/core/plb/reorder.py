"""``plb_reorder``: the FIFO / BUF / BITMAP reorder engine (§4.1, Fig. 3).

Data structures, mirroring the FPGA implementation:

* **FIFO** -- one order-preserving queue per reorder queue; each element is
  a reorder info (full PSN + arrival timestamp).  Bounded at ``depth``
  entries (4K in production: 100 µs of packets at 40 Mpps).
* **BUF**  -- packet storage indexed by ``psn[11:0]``; holds packets that
  returned from the CPU but are not yet at the FIFO head.
* **BITMAP** -- a lightweight mirror of BUF: (valid bit, PSN) per slot, the
  only state the head-monitor has to consult per FPGA cycle.

Egress processing:

* **legal check** -- a packet returning from a TX data queue is valid iff
  its ``psn[11:0]`` falls inside the FIFO's [head, tail) window.  Valid
  packets are written to BUF/BITMAP; invalid ones (essentially timed-out
  packets) are transmitted best-effort immediately (or dropped, if they
  were header-only and the NIC already released the payload).
* **reorder check** -- monitors the FIFO head.  Case 1: head older than
  the timeout (100 µs) is released.  Case 2: valid bit 0 -> keep waiting.
  Case 3: valid bit set but PSN mismatch -> a timed-out packet slipped
  through the legal check; transmit it best-effort and keep waiting.
  Case 4: PSN matches -> transmit in order.

The **active drop flag** (§4.1 HOL handling) lets the CPU notify the NIC
of explicit drops (ACL / rate limiting) so the reorder resources are
released immediately instead of stalling the FIFO for 100 µs.

The hardware busy-waits at the FPGA clock; the simulation is event-driven
and exact: the head is re-examined whenever (a) a packet writes back,
(b) the head changes, or (c) the head's timeout expires.
"""

import enum

from repro.analysis.sanitizer import get_sanitizer
from repro.sim.units import US


class TxOutcome(enum.Enum):
    """How a packet left the reorder engine (or failed to)."""

    IN_ORDER = "in_order"              # case 4: transmitted in order
    BEST_EFFORT = "best_effort"        # late packet transmitted out of order
    DROPPED_PAYLOAD_GONE = "payload_gone"  # header-only, payload released
    RELEASED_DROP_FLAG = "drop_flag"   # CPU set the drop flag; slot released


class ReorderInfo:
    """FIFO element: one in-flight packet's order bookkeeping."""

    __slots__ = ("psn", "enqueue_ns")

    def __init__(self, psn, enqueue_ns):
        self.psn = psn
        self.enqueue_ns = enqueue_ns

    def __repr__(self):
        return f"ReorderInfo(psn={self.psn}, t={self.enqueue_ns})"


class ReorderQueueConfig:
    """Sizing knobs for the reorder queues."""

    def __init__(self, queue_count=4, depth=4096, timeout_ns=100 * US):
        if queue_count < 1:
            raise ValueError("need at least one reorder queue")
        if depth < 1 or depth > 4096:
            # psn[11:0] indexing caps the per-queue depth at 4096.
            raise ValueError("depth must be in [1, 4096]")
        self.queue_count = queue_count
        self.depth = depth
        self.timeout_ns = timeout_ns


class ReorderStats:
    """Counters across all queues of one engine."""

    __slots__ = (
        "admitted",
        "in_order",
        "best_effort",
        "timeout_releases",
        "drop_flag_releases",
        "stale_writebacks",
        "payload_gone_drops",
        "fifo_full",
        "hol_events",
        "resets",
        "reset_inflight_drops",
        "stale_epoch_writebacks",
    )

    def __init__(self):
        for slot in self.__slots__:
            setattr(self, slot, 0)

    @property
    def transmitted(self):
        return self.in_order + self.best_effort

    def disorder_rate(self):
        """Fraction of transmitted packets that left out of order."""
        if self.transmitted == 0:
            return 0.0
        return self.best_effort / self.transmitted

    def checkpoint(self):
        """Plain-data snapshot (slot order is the declaration order)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def restore(self, snapshot):
        for slot in self.__slots__:
            setattr(self, slot, snapshot[slot])


class _ReorderQueue:
    """One FIFO + BUF + BITMAP triple."""

    __slots__ = (
        "fifo",
        "buf",
        "bitmap_valid",
        "bitmap_psn",
        "head_ptr",
        "tail_ptr",
        "timeout_event",
    )

    def __init__(self, depth):
        from collections import deque

        self.fifo = deque()
        self.buf = [None] * 4096          # slot -> (packet, header_only)
        self.bitmap_valid = [False] * 4096
        self.bitmap_psn = [0] * 4096
        self.head_ptr = 0                  # PSN of the current FIFO head
        self.tail_ptr = 0                  # next PSN to assign
        self.timeout_event = None


class ReorderEngine:
    """All reorder queues of one GW pod.

    Parameters:
        sim: the simulator (drives timeout events).
        config: a :class:`ReorderQueueConfig`.
        transmit_fn: called as ``transmit_fn(packet, outcome)`` whenever a
            packet leaves the engine (in order or best effort).
        payload_retention_ns: how long the NIC retains split payloads; a
            late header-only packet whose payload aged out is dropped.
    """

    def __init__(self, sim, config, transmit_fn, payload_retention_ns=1_000 * US):
        self.sim = sim
        self.config = config
        self.transmit_fn = transmit_fn
        self.payload_retention_ns = payload_retention_ns
        self.stats = ReorderStats()
        self.epoch = 0
        self._queues = [_ReorderQueue(config.depth) for _ in range(config.queue_count)]
        # Sanitizer bookkeeping: the PSN of each queue's last in-order
        # release.  Flows hash onto one order queue, so strictly
        # increasing PSNs per queue imply per-flow order on the wire.
        self._sanitizer = get_sanitizer()
        self._san_last_release = [None] * config.queue_count

    @property
    def queue_count(self):
        return self.config.queue_count

    def occupancy(self, ordq):
        """In-flight packets tracked by queue ``ordq``."""
        return len(self._queues[ordq].fifo)

    # ------------------------------------------------------------------
    # Ingress side (called by PlbDispatcher)
    # ------------------------------------------------------------------

    def admit(self, ordq, now_ns):
        """Reserve the next PSN in queue ``ordq`` and enqueue reorder info.

        Returns the assigned PSN, or None if the FIFO is full.
        """
        queue = self._queues[ordq]
        fifo = queue.fifo
        if len(fifo) >= self.config.depth:
            self.stats.fifo_full += 1
            return None
        psn = queue.tail_ptr
        queue.tail_ptr = psn + 1
        fifo.append(ReorderInfo(psn, now_ns))
        self.stats.admitted += 1
        if self._sanitizer is not None:
            self._sanitizer.ensure(
                len(fifo) <= self.config.depth, "finite-queue-bound",
                f"reorder FIFO {ordq} holds {len(fifo)} entries, "
                f"depth is {self.config.depth}",
                ordq=ordq, occupancy=len(fifo), depth=self.config.depth,
            )
        if len(fifo) == 1:
            self._arm_timeout(ordq, queue)
        return psn

    # ------------------------------------------------------------------
    # Egress side (called by the NIC TX path)
    # ------------------------------------------------------------------

    def writeback(self, packet):
        """A packet returned from the CPU via a TX data queue.

        Runs the legal check; valid packets land in BUF/BITMAP, invalid
        ones leave best-effort immediately.  The drop flag releases the
        packet's reorder slot without transmission.
        """
        meta = packet.meta
        if meta is None:
            raise ValueError("writeback of a packet without PLB meta")
        if meta.epoch != self.epoch:
            # Admitted before a watchdog pipeline reset: its FIFO slot is
            # gone and its PSN belongs to a dead generation.  Handle it
            # best-effort so a stale sequence number can never block or
            # misorder the post-recovery window.
            self.stats.stale_epoch_writebacks += 1
            self._transmit_late(packet)
            return
        queue = self._queues[meta.ordq]

        # Legal check: is psn12 within the FIFO's [head, tail) window, mod
        # 4096?  Only the low 12 bits are compared, exactly as in the
        # hardware; a very stale packet can alias into the window (caught
        # later by the reorder check's PSN comparison, case 3).
        slot = meta.psn12
        outstanding = len(queue.fifo)
        if outstanding == 0 or (slot - (queue.head_ptr & 0xFFF)) & 0xFFF >= outstanding:
            # Timed-out packet whose slot has already been released.
            self._transmit_late(packet)
            self._drain(meta.ordq, queue)
            return

        if queue.bitmap_valid[slot]:
            # Extremely late duplicate writeback into an occupied slot:
            # forward the resident best-effort and take the slot over.
            resident, header_only = queue.buf[slot]
            self.stats.stale_writebacks += 1
            self._transmit_best_effort(resident, header_only)
        queue.buf[slot] = (packet, meta.header_only or packet.header_only)
        queue.bitmap_valid[slot] = True
        queue.bitmap_psn[slot] = meta.psn
        if meta.drop:
            # The CPU is telling us this packet was deliberately dropped --
            # resources can be reclaimed the moment it reaches the head
            # (immediately, if it is the head).
            pass
        self._drain(meta.ordq, queue)

    def reset(self):
        """FPGA watchdog pipeline reset: drop all in-flight reorder state.

        FIFOs, BUF and BITMAP are cleared, PSN generators rewind to 0 and
        the engine's epoch advances; writebacks of pre-reset packets are
        recognized by their stale epoch and handled best-effort.  BUF
        residents that had already returned from the CPU are lost with the
        rest of the pipeline state.  Returns the number of in-flight
        packets whose reorder state was dropped.
        """
        dropped = 0
        for queue in self._queues:
            dropped += len(queue.fifo)
            if queue.timeout_event is not None:
                queue.timeout_event.cancel()
                queue.timeout_event = None
            queue.fifo.clear()
            queue.buf = [None] * 4096
            queue.bitmap_valid = [False] * 4096
            queue.bitmap_psn = [0] * 4096
            queue.head_ptr = 0
            queue.tail_ptr = 0
        # PSN generators rewound with the epoch: release tracking restarts.
        self._san_last_release = [None] * self.config.queue_count
        self.epoch += 1
        self.stats.resets += 1
        self.stats.reset_inflight_drops += dropped
        return dropped

    def checkpoint(self):
        """Plain-data snapshot: epochs, PSN generators and stats.

        Requires a **drained** engine: in-flight packets (FIFO entries or
        BUF residents) are live objects that cannot serialize, and a
        migration's drain phase guarantees there are none.  Raises
        ``ValueError`` otherwise so a premature freeze is loud.
        """
        for ordq, queue in enumerate(self._queues):
            if queue.fifo or any(queue.bitmap_valid):
                raise ValueError(
                    f"cannot checkpoint reorder engine: queue {ordq} has "
                    f"in-flight packets (drain the pod first)"
                )
        return {
            "epoch": self.epoch,
            "queues": [
                {"head_ptr": queue.head_ptr, "tail_ptr": queue.tail_ptr}
                for queue in self._queues
            ],
            "stats": self.stats.checkpoint(),
            "last_in_order_psn": list(self._san_last_release),
        }

    def restore(self, snapshot):
        """Reinstate a :meth:`checkpoint` in place.

        The engine must itself be empty (freshly built, or drained); PSN
        generators, epoch and stats continue exactly where the frozen
        engine stopped, so post-restore in-order releases keep strictly
        increasing PSNs per queue.
        """
        if len(snapshot["queues"]) != self.config.queue_count:
            raise ValueError(
                f"queue count mismatch: snapshot has "
                f"{len(snapshot['queues'])}, engine has "
                f"{self.config.queue_count}"
            )
        for queue, state in zip(self._queues, snapshot["queues"]):
            if queue.fifo or any(queue.bitmap_valid):
                raise ValueError("cannot restore into a non-empty reorder engine")
            if queue.timeout_event is not None:
                queue.timeout_event.cancel()
                queue.timeout_event = None
            queue.head_ptr = state["head_ptr"]
            queue.tail_ptr = state["tail_ptr"]
        self.epoch = snapshot["epoch"]
        self.stats.restore(snapshot["stats"])
        self._san_last_release = list(snapshot["last_in_order_psn"])

    def notify_drop(self, packet):
        """Active drop-flag path: the CPU dropped ``packet`` explicitly."""
        if packet.meta is None:
            raise ValueError("drop notification without PLB meta")
        packet.meta.drop = True
        self.writeback(packet)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _drain(self, ordq, queue):
        """Reorder check: release every in-order head that is ready."""
        fifo = queue.fifo
        buf = queue.buf
        bitmap_valid = queue.bitmap_valid
        bitmap_psn = queue.bitmap_psn
        stats = self.stats
        transmit_fn = self.transmit_fn
        while fifo:
            head = fifo[0]
            head_psn = head.psn
            slot = head_psn & 0xFFF
            if not bitmap_valid[slot]:
                if self.sim._now - head.enqueue_ns >= self.config.timeout_ns:
                    # Case 1: head timed out; release it unfulfilled.
                    fifo.popleft()
                    queue.head_ptr = head_psn + 1
                    stats.timeout_releases += 1
                    stats.hol_events += 1
                    continue
                break  # Case 2: keep waiting for the CPU.
            packet, header_only = buf[slot]
            if bitmap_psn[slot] != head_psn:
                # Case 3: a stale (timed-out) packet passed the legal check.
                stats.stale_writebacks += 1
                buf[slot] = None
                bitmap_valid[slot] = False
                self._transmit_best_effort(packet, header_only)
                continue  # head still waits for its real packet
            # Case 4: in-order transmission (or drop-flag release).
            fifo.popleft()
            queue.head_ptr = head_psn + 1
            buf[slot] = None
            bitmap_valid[slot] = False
            if self._sanitizer is not None:
                self._note_in_order_release(ordq, head_psn)
            meta = packet.meta
            if meta is not None and meta.drop:
                stats.drop_flag_releases += 1
                transmit_fn(packet, TxOutcome.RELEASED_DROP_FLAG)
            else:
                stats.in_order += 1
                transmit_fn(packet, TxOutcome.IN_ORDER)
        self._arm_timeout(ordq, queue)

    def _note_in_order_release(self, ordq, psn):
        """Sanitizer: in-order releases must carry strictly increasing PSNs."""
        last = self._san_last_release[ordq]
        self._sanitizer.ensure(
            last is None or psn > last, "reorder-release-order",
            f"order queue {ordq} released PSN {psn} in order after PSN {last}",
            ordq=ordq, psn=psn, last_psn=last, epoch=self.epoch,
        )
        self._san_last_release[ordq] = psn

    def _clear_slot(self, queue, slot):
        queue.buf[slot] = None
        queue.bitmap_valid[slot] = False

    def _arm_timeout(self, ordq, queue):
        """(Re)schedule the head-timeout event for this queue."""
        if queue.timeout_event is not None:
            queue.timeout_event.cancel()
            queue.timeout_event = None
        if not queue.fifo:
            return
        sim = self.sim
        delay = queue.fifo[0].enqueue_ns + self.config.timeout_ns - sim._now
        if delay < 0:
            delay = 0
        queue.timeout_event = sim.schedule(delay, self._on_timeout, ordq)

    def _on_timeout(self, ordq):
        queue = self._queues[ordq]
        queue.timeout_event = None
        self._drain(ordq, queue)

    def _transmit_late(self, packet):
        """A packet that failed the legal check: best-effort or drop."""
        self._transmit_best_effort(packet, packet.header_only)

    def _transmit_best_effort(self, packet, header_only):
        if packet.meta is not None and packet.meta.drop:
            # Late drop notification: nothing to send, nothing to release.
            self.stats.drop_flag_releases += 1
            return
        if header_only:
            age = self.sim.now - packet.meta.timestamp_ns
            if age > self.payload_retention_ns:
                self.stats.payload_gone_drops += 1
                packet.drop_reason = "payload_released"
                self.transmit_fn(packet, TxOutcome.DROPPED_PAYLOAD_GONE)
                return
        self.stats.best_effort += 1
        self.transmit_fn(packet, TxOutcome.BEST_EFFORT)
