"""Packet-level load balancing: dispatch (ingress) and reorder (egress)."""

from repro.core.plb.dispatch import PlbDispatcher
from repro.core.plb.reorder import (
    ReorderEngine,
    ReorderInfo,
    ReorderQueueConfig,
    TxOutcome,
)

__all__ = [
    "PlbDispatcher",
    "ReorderEngine",
    "ReorderInfo",
    "ReorderQueueConfig",
    "TxOutcome",
]
