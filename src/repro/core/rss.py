"""Flow-level RSS dispatch: the 1st-gen baseline and PLB's fallback mode.

Hashes the 5-tuple with the Toeplitz function through a 128-entry
indirection table, exactly like a hardware NIC.  Every packet of a flow
lands on one core -- which is why a single heavy-hitter flow overloads a
single core (§2.1) and why Fig. 8's RSS line collapses once the hitter
exceeds one core's capacity.
"""

from repro.packet.hashing import TOEPLITZ_DEFAULT_KEY, toeplitz_flow_hash

INDIRECTION_ENTRIES = 128


class RssDispatcher:
    """Receive-side scaling across a pod's data cores."""

    def __init__(self, cores, key=TOEPLITZ_DEFAULT_KEY):
        if not cores:
            raise ValueError("RSS needs at least one core")
        self.cores = list(cores)
        self.key = key
        # Default indirection table: round-robin over cores, as drivers do.
        self._indirection = [
            index % len(self.cores) for index in range(INDIRECTION_ENTRIES)
        ]
        self.dispatched = 0
        self._hash_cache = {}  # lint: disable=SNAP001(pure memo of the Toeplitz flow hash; a rebuilt cache re-derives identical entries)

    @property
    def indirection_table(self):
        return list(self._indirection)

    def set_indirection(self, table):
        """Reprogram the indirection table (len must divide evenly)."""
        if len(table) != INDIRECTION_ENTRIES:
            raise ValueError(
                f"indirection table must have {INDIRECTION_ENTRIES} entries"
            )
        for entry in table:
            if not 0 <= entry < len(self.cores):
                raise ValueError(f"core index out of range: {entry}")
        self._indirection = list(table)

    def core_for_flow(self, flow):
        """The core a flow is pinned to (pure function of the 5-tuple)."""
        hashed = self._hash_cache.get(flow)
        if hashed is None:
            hashed = toeplitz_flow_hash(flow, self.key)
            if len(self._hash_cache) < 1_000_000:
                self._hash_cache[flow] = hashed
        return self.cores[self._indirection[hashed % INDIRECTION_ENTRIES]]

    def dispatch(self, packet):
        """Pick the core for ``packet``; pure selection, no queueing."""
        self.dispatched += 1
        return self.core_for_flow(packet.flow)

    def checkpoint(self):
        """Plain-data snapshot: the indirection program + dispatch count.

        The Toeplitz hash memo is **not** carried: it is a pure function
        of the 5-tuple and the key, so a restored dispatcher recomputes
        identical values on demand.
        """
        return {
            "dispatched": self.dispatched,
            "indirection": list(self._indirection),
        }

    def restore(self, snapshot):
        self.set_indirection(snapshot["indirection"])
        self.dispatched = snapshot["dispatched"]
