"""Gateway overload protection: the two-stage tenant rate limiter (§4.3).

Assigning one meter per tenant would cost >200 MB of SRAM for 1M tenants;
Albatross gets the same protection from ~2 MB via two stages:

* **Stage 1 (color_table)** -- 4K entries indexed by ``VNI % 4096``.
  Traffic within the coarse limit passes; the *excess* is marked and sent
  to stage 2.
* **Stage 2 (meter_table)** -- a hash table indexed by ``hash(VNI)``.
  Marked traffic beyond the fine limit is dropped.

So a tenant's effective ceiling is ``stage1_rate + stage2_rate`` (the
Fig. 14 experiment uses 8 + 2 = 10 Mpps).

Hash collisions in the meter table can rate-limit innocent tenants, so a
**pre_check** table (128 entries) identifies heavy hitters -- sampled from
meter-table activity, since heavy hitters dominate the samples -- and
rate-limits them early in a dedicated **pre_meter** (128 entries), keeping
them out of the shared meter table.  Top-tier tenants can be configured in
pre_check to bypass rate limiting entirely.
"""

import enum

from repro.analysis.sanitizer import get_sanitizer
from repro.packet.hashing import crc32_vni_hash
from repro.sim.rng import rng_state, set_rng_state
from repro.sim.units import SECOND


class RateLimitDecision(enum.Enum):
    """Outcome of :meth:`TwoStageRateLimiter.admit` for one packet."""

    ALLOW = "allow"                    # within the coarse limit
    ALLOW_MARKED = "allow_marked"      # exceeded stage 1, within stage 2
    DROP_METER = "drop_meter"          # exceeded both stages
    ALLOW_PRE = "allow_pre"            # known heavy hitter, within pre_meter
    DROP_PRE = "drop_pre"              # known heavy hitter, over pre_meter
    BYPASS = "bypass"                  # configured to skip all limiting

    @property
    def allowed(self):
        return self in (
            RateLimitDecision.ALLOW,
            RateLimitDecision.ALLOW_MARKED,
            RateLimitDecision.ALLOW_PRE,
            RateLimitDecision.BYPASS,
        )


class TokenBucket:
    """Packet-rate token bucket with lazy refill.

    ``rate_pps`` tokens accrue per second up to ``burst`` tokens.  Time is
    integer nanoseconds; token state is kept in fractional tokens to avoid
    rounding drift at low rates.
    """

    __slots__ = ("rate_pps", "burst", "_tokens", "_last_ns")

    def __init__(self, rate_pps, burst=None):
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive: {rate_pps}")
        self.rate_pps = rate_pps
        # Default burst: 10 ms worth of traffic, at least one packet.
        self.burst = burst if burst is not None else max(1.0, rate_pps * 0.01)
        self._tokens = float(self.burst)
        self._last_ns = 0

    def _refill(self, now_ns):
        if now_ns > self._last_ns:
            gained = (now_ns - self._last_ns) * self.rate_pps / SECOND
            self._tokens = min(float(self.burst), self._tokens + gained)
            self._last_ns = now_ns

    def allow(self, now_ns, tokens=1.0):
        """Consume ``tokens`` if available; returns True if admitted."""
        self._refill(now_ns)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def tokens_at(self, now_ns):
        self._refill(now_ns)
        return self._tokens

    def reconfigure(self, rate_pps, burst=None):
        self.rate_pps = rate_pps
        if burst is not None:
            self.burst = burst
            self._tokens = min(self._tokens, float(burst))

    def checkpoint(self):
        """Plain-data snapshot of the bucket's fill state."""
        return {
            "rate_pps": self.rate_pps,
            "burst": self.burst,
            "tokens": self._tokens,
            "last_ns": self._last_ns,
        }

    @classmethod
    def from_checkpoint(cls, snapshot):
        """Rebuild a bucket exactly as :meth:`checkpoint` captured it."""
        bucket = cls(snapshot["rate_pps"], burst=snapshot["burst"])
        bucket._tokens = snapshot["tokens"]
        bucket._last_ns = snapshot["last_ns"]
        return bucket


class _HitterSampler:
    """Sampled heavy-hitter detection over meter-table drops.

    Each meter-table *drop* is sampled with probability ``1/sample_rate``;
    a VNI whose sample count crosses ``threshold`` within ``window_ns`` is
    promoted to the pre_check table.  Heavy hitters dominate drops, so the
    promotion takes effect "in one second" as the paper states.
    """

    def __init__(self, rng, sample_rate=100, threshold=8, window_ns=SECOND):
        self.rng = rng
        self.sample_rate = sample_rate
        self.threshold = threshold
        self.window_ns = window_ns
        self._counts = {}
        self._window_start = 0

    def observe(self, vni, now_ns):
        """Record one meter drop; returns True when ``vni`` crosses the bar."""
        if now_ns - self._window_start > self.window_ns:
            self._counts.clear()
            self._window_start = now_ns
        if self.rng.randrange(self.sample_rate) != 0:
            return False
        count = self._counts.get(vni, 0) + 1
        self._counts[vni] = count
        return count >= self.threshold

    def checkpoint(self):
        """Snapshot: window counts (as pairs, keeping VNIs integer) + rng."""
        return {
            "counts": [[vni, self._counts[vni]] for vni in sorted(self._counts)],
            "window_start": self._window_start,
            "rng": rng_state(self.rng),
        }

    def restore(self, snapshot):
        self._counts = {vni: count for vni, count in snapshot["counts"]}
        self._window_start = snapshot["window_start"]
        set_rng_state(self.rng, snapshot["rng"])


class TwoStageRateLimiter:
    """The full §4.3 pipeline: pre_check -> color_table -> meter_table.

    Parameters:
        rng: random stream for the sampler.
        stage1_rate_pps / stage2_rate_pps: per-entry limits.
        color_entries: stage-1 table size (4K in hardware).
        meter_entries: stage-2 hash-table size.
        pre_entries: capacity of pre_check / pre_meter (128 in hardware).
        pre_rate_pps: rate granted to promoted heavy hitters (defaults to
            stage1 + stage2, i.e. the same effective ceiling).
        auto_promote: enable sampling-based promotion into pre_check.
    """

    COLOR_ENTRY_BYTES = 32
    METER_ENTRY_BYTES = 32
    PRE_ENTRY_BYTES = 32

    def __init__(
        self,
        rng,
        stage1_rate_pps=8_000_000,
        stage2_rate_pps=2_000_000,
        color_entries=4096,
        meter_entries=61440,
        pre_entries=128,
        pre_rate_pps=None,
        auto_promote=True,
        sample_rate=100,
    ):
        self.stage1_rate_pps = stage1_rate_pps
        self.stage2_rate_pps = stage2_rate_pps
        self.color_entries = color_entries
        self.meter_entries = meter_entries
        self.pre_entries = pre_entries
        self.pre_rate_pps = (
            pre_rate_pps if pre_rate_pps is not None else stage1_rate_pps + stage2_rate_pps
        )
        self.auto_promote = auto_promote
        self._color = {}   # index -> TokenBucket (lazily materialized)
        self._meter = {}
        self._pre_meter = {}   # vni -> TokenBucket
        self._bypass = set()
        self._sampler = _HitterSampler(rng, sample_rate=sample_rate)
        self.decisions = {decision: 0 for decision in RateLimitDecision}
        self.promotions = 0
        self.sram_resets = 0
        self._sanitizer = get_sanitizer()

    # -- configuration -------------------------------------------------

    def add_bypass(self, vni):
        """Exempt a top-tier tenant from all rate limiting."""
        if len(self._bypass) + len(self._pre_meter) >= self.pre_entries:
            raise ValueError("pre_check table full")
        self._bypass.add(vni)

    def promote_heavy_hitter(self, vni, rate_pps=None):
        """Install ``vni`` into pre_check/pre_meter for early limiting.

        Also the hook for the planned CPU-side proactive detection (§4.3).
        Returns False when the 128-entry table is full.
        """
        if vni in self._pre_meter:
            return True
        if len(self._bypass) + len(self._pre_meter) >= self.pre_entries:
            return False
        self._pre_meter[vni] = TokenBucket(rate_pps or self.pre_rate_pps)
        self.promotions += 1
        return True

    def demote(self, vni):
        """Remove a tenant from the pre tables (burst over)."""
        self._pre_meter.pop(vni, None)

    @property
    def pre_table_vnis(self):
        return set(self._pre_meter)

    def corrupt_sram(self):
        """Fault injection: an SRAM scrub wipes every token bucket.

        Buckets lazily re-materialize at full burst on the next packet, so
        the visible symptom is a transient over-admission burst (each
        tenant gets a fresh ``burst`` worth of tokens) before the limiter
        re-converges to steady-state enforcement.  Promoted heavy hitters
        lose their pre_meter entries and must be re-detected by sampling.
        Returns the number of live bucket entries wiped.
        """
        wiped = len(self._color) + len(self._meter) + len(self._pre_meter)
        self._color.clear()
        self._meter.clear()
        self._pre_meter.clear()
        self.sram_resets += 1
        return wiped

    # -- checkpoint / restore (live migration) ---------------------------

    def checkpoint(self):
        """Plain-data snapshot of the limiter SRAM: every lazily
        materialized token bucket, the bypass set, the sampler window and
        rng, and the decision counters.

        Bucket tables serialize as ``[index, bucket]`` pairs sorted by
        index, so the snapshot's byte layout is independent of packet
        arrival order (dict insertion order is arrival order here).
        """
        return {
            "stage1_rate_pps": self.stage1_rate_pps,
            "stage2_rate_pps": self.stage2_rate_pps,
            "pre_rate_pps": self.pre_rate_pps,
            "color": [
                [index, self._color[index].checkpoint()]
                for index in sorted(self._color)
            ],
            "meter": [
                [index, self._meter[index].checkpoint()]
                for index in sorted(self._meter)
            ],
            "pre_meter": [
                [vni, self._pre_meter[vni].checkpoint()]
                for vni in sorted(self._pre_meter)
            ],
            "bypass": sorted(self._bypass),
            "decisions": {
                decision.value: self.decisions[decision]
                for decision in RateLimitDecision
            },
            "promotions": self.promotions,
            "sram_resets": self.sram_resets,
            "sampler": self._sampler.checkpoint(),
        }

    def restore(self, snapshot):
        """Reinstate a :meth:`checkpoint` in place (table sizes and
        promotion policy stay as constructed)."""
        self.stage1_rate_pps = snapshot["stage1_rate_pps"]
        self.stage2_rate_pps = snapshot["stage2_rate_pps"]
        self.pre_rate_pps = snapshot["pre_rate_pps"]
        self._color = {
            index: TokenBucket.from_checkpoint(state)
            for index, state in snapshot["color"]
        }
        self._meter = {
            index: TokenBucket.from_checkpoint(state)
            for index, state in snapshot["meter"]
        }
        self._pre_meter = {
            vni: TokenBucket.from_checkpoint(state)
            for vni, state in snapshot["pre_meter"]
        }
        self._bypass = set(snapshot["bypass"])
        self.decisions = {
            decision: snapshot["decisions"][decision.value]
            for decision in RateLimitDecision
        }
        self.promotions = snapshot["promotions"]
        self.sram_resets = snapshot["sram_resets"]
        self._sampler.restore(snapshot["sampler"])

    # -- data path -------------------------------------------------------

    def admit(self, vni, now_ns):
        """Run one packet of tenant ``vni`` through the limiter."""
        decision = self._admit(vni, now_ns)
        self.decisions[decision] += 1
        if self._sanitizer is not None:
            self._check_sram_budget()
        return decision

    def _check_sram_budget(self):
        """Lazily materialized buckets must fit the provisioned tables."""
        sanitizer = self._sanitizer
        sanitizer.ensure(
            len(self._color) <= self.color_entries, "sram-budget",
            f"color table holds {len(self._color)} buckets, "
            f"provisioned for {self.color_entries}",
            live=len(self._color), entries=self.color_entries,
        )
        sanitizer.ensure(
            len(self._meter) <= self.meter_entries, "sram-budget",
            f"meter table holds {len(self._meter)} buckets, "
            f"provisioned for {self.meter_entries}",
            live=len(self._meter), entries=self.meter_entries,
        )
        pre_live = len(self._bypass) + len(self._pre_meter)
        sanitizer.ensure(
            pre_live <= self.pre_entries, "sram-budget",
            f"pre_check/pre_meter hold {pre_live} entries, "
            f"provisioned for {self.pre_entries}",
            live=pre_live, entries=self.pre_entries,
        )

    def _admit(self, vni, now_ns):
        # pre_check stage: bypass and known heavy hitters.
        if vni in self._bypass:
            return RateLimitDecision.BYPASS
        pre_bucket = self._pre_meter.get(vni)
        if pre_bucket is not None:
            if pre_bucket.allow(now_ns):
                return RateLimitDecision.ALLOW_PRE
            return RateLimitDecision.DROP_PRE

        # Stage 1: coarse-grained color table.
        color_index = vni % self.color_entries
        color_bucket = self._color.get(color_index)
        if color_bucket is None:
            color_bucket = TokenBucket(self.stage1_rate_pps)
            self._color[color_index] = color_bucket
        if color_bucket.allow(now_ns):
            return RateLimitDecision.ALLOW

        # Stage 2: marked excess through the fine-grained meter table.
        meter_index = crc32_vni_hash(vni, seed=0x3E7E) % self.meter_entries
        meter_bucket = self._meter.get(meter_index)
        if meter_bucket is None:
            meter_bucket = TokenBucket(self.stage2_rate_pps)
            self._meter[meter_index] = meter_bucket
        if meter_bucket.allow(now_ns):
            return RateLimitDecision.ALLOW_MARKED

        if self.auto_promote and self._sampler.observe(vni, now_ns):
            self.promote_heavy_hitter(vni)
        return RateLimitDecision.DROP_METER

    # -- accounting ------------------------------------------------------

    def decisions_dropped(self):
        """Total packets dropped by any stage (meter or pre_meter)."""
        return (
            self.decisions[RateLimitDecision.DROP_METER]
            + self.decisions[RateLimitDecision.DROP_PRE]
        )

    def sram_bytes(self):
        """Provisioned on-chip SRAM (hardware sizes all entries up front)."""
        return (
            self.color_entries * self.COLOR_ENTRY_BYTES
            + self.meter_entries * self.METER_ENTRY_BYTES
            + 2 * self.pre_entries * self.PRE_ENTRY_BYTES  # pre_check + pre_meter
        )

    @staticmethod
    def naive_sram_bytes(tenants, entry_bytes=208):
        """Per-tenant meters: what the paper rules out (>200 MB for 1M)."""
        return tenants * entry_bytes

    def meter_collision_pairs(self, vnis):
        """Which of ``vnis`` share a meter-table entry (diagnostics)."""
        by_index = {}
        for vni in vnis:
            index = crc32_vni_hash(vni, seed=0x3E7E) % self.meter_entries
            by_index.setdefault(index, []).append(vni)
        return [group for group in by_index.values() if len(group) > 1]
