"""GW pod control plane: BGP + BFD over the pod's priority path.

Each GW pod's ctrl cores run BGP (VIP advertisement) and BFD (fast link
failure detection) toward the uplink switch -- in Albatross those
packets traverse the NIC's dedicated priority queues, which is why a
saturated data plane cannot flap them (§4.3).

:class:`PodControlPlane` binds a :class:`~repro.bgp.speaker.BgpSpeaker`
and a :class:`~repro.bgp.bfd.BfdSession` to a
:class:`~repro.core.gateway.GwPodRuntime`: protocol bytes are wrapped in
``PacketKind.PROTOCOL`` packets, injected at the pod's NIC ingress,
delivered through the priority queue to the ctrl-core handler, and only
then decoded -- so control traffic genuinely competes (or rather,
doesn't) with the data plane.
"""

from repro.bgp.bfd import BfdSession
from repro.bgp.fsm import BgpSession
from repro.bgp.speaker import BgpSpeaker
from repro.packet.flows import FlowKey
from repro.packet.packet import Packet, PacketKind
from repro.sim.units import MS

BGP_PORT = 179
BFD_PORT = 3784


class PodControlPlane:
    """The control side of one GW pod.

    Parameters:
        pod: the :class:`~repro.core.gateway.GwPodRuntime`.
        name: BGP identity (defaults to the pod's name).
        asn / bgp_id / router_ip: speaker parameters.
        peer_link_latency_ns: wire latency toward the switch.

    Use :meth:`connect_switch` to peer with an
    :class:`~repro.bgp.switch.UplinkSwitch` (or a proxy); the pod side of
    the session rides the pod's priority path end to end.
    """

    def __init__(self, pod, asn=65001, bgp_id=None, router_ip=None, name=None):
        self.pod = pod
        self.sim = pod.sim
        self.name = name or pod.config.name
        self.speaker = BgpSpeaker(
            self.sim,
            self.name,
            asn,
            bgp_id if bgp_id is not None else 0x0A000000 + abs(hash(self.name)) % 65536,
            router_ip=router_ip if router_ip is not None else 0x0A000001,
        )
        self.bfd = None
        self._handlers = {}  # dst_port -> callable(payload bytes)
        pod.nic.priority.deliver_fn = self._on_priority_packet
        self._payloads = {}  # packet uid -> protocol bytes

    # -- plumbing ----------------------------------------------------------

    def _inject(self, dst_port, payload):
        """Wrap protocol bytes in a PROTOCOL packet through the pod NIC."""
        packet = Packet(
            FlowKey(self.speaker.router_ip, 0x0A00FF01, dst_port, dst_port, 6),
            size=64 + len(payload),
            kind=PacketKind.PROTOCOL,
        )
        self._payloads[packet.uid] = (dst_port, payload)
        self.pod.ingress(packet)

    def _on_priority_packet(self, packet):
        entry = self._payloads.pop(packet.uid, None)
        if entry is None:
            return  # externally injected protocol packet; nothing to decode
        dst_port, payload = entry
        handler = self._handlers.get(dst_port)
        if handler is not None:
            handler(payload)

    # -- BGP -----------------------------------------------------------------

    def connect_switch(self, switch, hold_time_s=9, link_latency_ns=1 * MS):
        """Establish eBGP with ``switch``; returns this side's session.

        Outbound messages traverse the pod's priority path, then the wire;
        inbound messages arrive directly at the speaker (the switch's own
        queueing is out of scope).
        """
        sessions = {}

        def pod_send(data):
            # Ride the priority path; on ctrl-core delivery, go to wire.
            self._inject(BGP_PORT, ("bgp", data))

        def wire_to_switch(payload):
            kind, data = payload
            self.sim.schedule(link_latency_ns, sessions["switch"].receive, data)

        self._handlers[BGP_PORT] = wire_to_switch

        def switch_send(data):
            self.sim.schedule(link_latency_ns, sessions["pod"].receive, data)

        pod_session = BgpSession(
            self.sim, self.speaker, switch.name, pod_send, hold_time_s=hold_time_s
        )
        switch_session = BgpSession(
            self.sim, switch, self.name, switch_send, hold_time_s=hold_time_s
        )
        sessions["pod"] = pod_session
        sessions["switch"] = switch_session
        self.speaker.register_session(pod_session)
        switch.register_session(switch_session)
        pod_session.start()
        return pod_session

    def advertise_vip(self, prefix, length=32):
        self.speaker.advertise(prefix, length)

    def withdraw_vip(self, prefix, length=32):
        self.speaker.withdraw(prefix, length)

    # -- BFD -----------------------------------------------------------------

    def start_bfd(self, remote_receive_fn, interval_ns=50 * MS, on_down=None,
                  link_latency_ns=1 * MS):
        """Start a BFD session whose probes ride the priority path.

        ``remote_receive_fn(data)`` delivers probe bytes to the far end.
        Returns the local :class:`~repro.bgp.bfd.BfdSession`.
        """

        def send(data):
            self._inject(BFD_PORT, ("bfd", data))

        def wire(payload):
            _, data = payload
            self.sim.schedule(link_latency_ns, remote_receive_fn, data)

        self._handlers[BFD_PORT] = wire
        self.bfd = BfdSession(
            self.sim, f"{self.name}-bfd", send, interval_ns=interval_ns,
            on_down=on_down,
        )
        return self.bfd
