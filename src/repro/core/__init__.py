"""Albatross's primary contribution: the FPGA NIC pipeline.

Subsystems (paper section in parentheses):

* :mod:`repro.core.meta` -- the PLB meta header tagged onto every sprayed
  packet (§4.1, §7 "meta header" lesson).
* :mod:`repro.core.pktdir` -- the programmable ``pkt_dir`` classifier
  splitting traffic into priority / PLB / RSS paths (§3.2).
* :mod:`repro.core.plb` -- packet-level load balancing: dispatch (spray +
  PSN tagging) and reorder (FIFO/BUF/BITMAP engine) (§4.1).
* :mod:`repro.core.rss` -- the flow-level RSS baseline and fallback.
* :mod:`repro.core.ratelimit` -- two-stage tenant overload rate limiter
  (§4.3).
* :mod:`repro.core.priority` -- protocol-packet priority queues (§4.3).
* :mod:`repro.core.resources` -- FPGA latency/resource accounting
  (Tab. 4, Tab. 5).
* :mod:`repro.core.nic` -- the assembled NIC pipeline.
* :mod:`repro.core.gateway` -- GW pod runtime + Albatross server: the
  top-level public API.
"""

from repro.core.gateway import AlbatrossServer, GwPodRuntime, PodConfig
from repro.core.hitters import CpuHitterDetector, SpaceSavingSketch
from repro.core.meta import MetaPlacement, PlbMeta
from repro.core.nic import NicPipeline, NicPipelineConfig
from repro.core.offload import FpgaSessionOffload
from repro.core.pcie import PcieLinkModel, PortCapacityModel
from repro.core.pktdir import PktDir, PktDirRule
from repro.core.plb.dispatch import PlbDispatcher
from repro.core.plb.reorder import ReorderEngine, ReorderQueueConfig
from repro.core.priority import PriorityQueueManager
from repro.core.ratelimit import RateLimitDecision, TokenBucket, TwoStageRateLimiter
from repro.core.resources import FpgaResourceModel, NIC_MODULE_LATENCY_US
from repro.core.rss import RssDispatcher

__all__ = [
    "AlbatrossServer",
    "GwPodRuntime",
    "PodConfig",
    "MetaPlacement",
    "PlbMeta",
    "NicPipeline",
    "NicPipelineConfig",
    "CpuHitterDetector",
    "SpaceSavingSketch",
    "FpgaSessionOffload",
    "PcieLinkModel",
    "PortCapacityModel",
    "PktDir",
    "PktDirRule",
    "PlbDispatcher",
    "ReorderEngine",
    "ReorderQueueConfig",
    "PriorityQueueManager",
    "RateLimitDecision",
    "TokenBucket",
    "TwoStageRateLimiter",
    "FpgaResourceModel",
    "NIC_MODULE_LATENCY_US",
    "RssDispatcher",
]
