"""PCIe bandwidth and NIC-port capacity models (appendix A, §2.1).

Two throughput ceilings the paper reasons about:

* **PCIe between FPGA and CPU** -- header-payload-split mode forwards
  only headers (+ the PLB meta) over PCIe, leaving payloads in the NIC
  buffer.  For jumbo frames (up to 8,500 B of Ethernet payload) this is
  the difference between PCIe being the bottleneck and not.
* **NIC port line rate** -- §2.1's "NIC port overloading": a congested
  port drops indiscriminately, control-plane protocols included, unless
  (as in Albatross) protocol packets ride a priority queue.
"""

from repro.sim.units import SECOND

# PCIe Gen4 x16: 31.5 GB/s raw; ~85% attainable after TLP overheads.
PCIE_GEN4_X16_GBPS = 252.0
# Header slice forwarded in split mode: parsed stack + room for options.
SPLIT_HEADER_BYTES = 128
PLB_META_BYTES = 16
# Per-packet DMA overhead (descriptor + completion) on the link.
DESCRIPTOR_OVERHEAD_BYTES = 32


class PcieLinkModel:
    """One NIC's PCIe attachment: bytes-per-packet and ceilings."""

    def __init__(self, gbps=PCIE_GEN4_X16_GBPS):
        self.gbps = gbps
        self.bytes_transferred = 0
        self.packets = 0

    @property
    def bytes_per_second(self):
        return self.gbps * 1e9 / 8

    def bytes_for_packet(self, wire_bytes, split=False):
        """PCIe bytes moved for one packet, one direction."""
        if split:
            payload_bytes = min(wire_bytes, SPLIT_HEADER_BYTES)
        else:
            payload_bytes = wire_bytes
        return payload_bytes + PLB_META_BYTES + DESCRIPTOR_OVERHEAD_BYTES

    def record(self, wire_bytes, split=False):
        """Account one packet (RX or TX direction)."""
        moved = self.bytes_for_packet(wire_bytes, split)
        self.bytes_transferred += moved
        self.packets += 1
        return moved

    def max_pps(self, wire_bytes, split=False, directions=2):
        """Packet rate at which this link saturates.

        ``directions=2`` charges both the RX and TX crossing, as the NIC
        pipeline does for forwarded traffic.
        """
        per_packet = self.bytes_for_packet(wire_bytes, split) * directions
        return self.bytes_per_second / per_packet

    def utilization(self, window_ns):
        """Link utilization over a window given recorded traffic."""
        if window_ns <= 0:
            return 0.0
        capacity = self.bytes_per_second * window_ns / SECOND
        return self.bytes_transferred / capacity

    def split_speedup(self, wire_bytes):
        """How much header-payload split raises the PCIe-bound pps."""
        return self.max_pps(wire_bytes, split=True) / self.max_pps(
            wire_bytes, split=False
        )


class PortCapacityModel:
    """A NIC port's line rate with optional protocol prioritization.

    Models §2.1's failure: when offered load exceeds the port, the
    excess is dropped *indiscriminately* -- protocol packets included --
    unless ``priority_protected`` reserves headroom for them (Albatross's
    dedicated priority queues).
    """

    PREAMBLE_IFG_BYTES = 20  # preamble + inter-frame gap on the wire

    def __init__(self, gbps=100, priority_protected=True):
        self.gbps = gbps
        self.priority_protected = priority_protected

    def line_rate_pps(self, frame_bytes):
        wire = frame_bytes + self.PREAMBLE_IFG_BYTES
        return self.gbps * 1e9 / 8 / wire

    def delivery(self, offered_data_pps, offered_protocol_pps, frame_bytes=256,
                 protocol_bytes=64):
        """(delivered_data_pps, delivered_protocol_pps) under contention."""
        capacity = self.line_rate_pps(frame_bytes)
        # Protocol volume is tiny; convert to data-frame equivalents.
        equivalence = (protocol_bytes + self.PREAMBLE_IFG_BYTES) / (
            frame_bytes + self.PREAMBLE_IFG_BYTES
        )
        protocol_load = offered_protocol_pps * equivalence
        total = offered_data_pps + protocol_load
        if total <= capacity:
            return offered_data_pps, offered_protocol_pps
        if self.priority_protected:
            # Protocol gets strict priority; data absorbs the whole cut.
            data_capacity = max(0.0, capacity - protocol_load)
            return min(offered_data_pps, data_capacity), offered_protocol_pps
        # Indiscriminate drop: both classes scaled by the same factor --
        # this is what broke BGP/BFD on the 1st-gen gateways.
        keep = capacity / total
        return offered_data_pps * keep, offered_protocol_pps * keep
