"""PLB health watchdog: automatic fallback to RSS (§4.1, remediation 5).

"If the previous methods do not work and we are unable to pinpoint the
root cause, the GW pod can dynamically switch from PLB mode to RSS mode
to attempt remediation."  In production this is an operator action; the
watchdog automates the trigger: it samples the reorder engine's HOL and
disorder counters every period and falls back when they stay above
threshold for ``strikes`` consecutive periods (a single noisy period is
tolerated -- minor HOL is normal and handled by the timeout).

The watchdog can also restore PLB after a configurable quiet interval,
for operators who want auto-recovery rather than a sticky fallback.
"""

from repro.sim.units import SECOND


class PlbWatchdog:
    """Monitors one pod's reorder health and drives mode fallback.

    Parameters:
        sim: the simulator.
        nic: the pod's :class:`~repro.core.nic.NicPipeline`.
        hol_events_per_s_threshold: sustained HOL rate that trips a strike.
        disorder_rate_threshold: sustained disorder fraction that trips.
        strikes: consecutive bad periods before falling back.
        period_ns: sampling period.
        auto_restore_after_ns: restore PLB after this long in RSS
            (None = stay in RSS until told otherwise).
    """

    def __init__(
        self,
        sim,
        nic,
        hol_events_per_s_threshold=1000.0,
        disorder_rate_threshold=1e-3,
        strikes=3,
        period_ns=SECOND // 10,
        auto_restore_after_ns=None,
    ):
        self.sim = sim
        self.nic = nic
        self.hol_events_per_s_threshold = hol_events_per_s_threshold
        self.disorder_rate_threshold = disorder_rate_threshold
        self.strikes = strikes
        self.period_ns = period_ns
        self.auto_restore_after_ns = auto_restore_after_ns
        self.fallbacks = 0
        self.restores = 0
        self._strike_count = 0
        self._last_hol = 0
        self._last_best_effort = 0
        self._last_transmitted = 0
        self._fell_back_at = None
        self._task = sim.every(period_ns, self._check)

    @property
    def in_fallback(self):
        return self.nic.config.mode == "rss" and self._fell_back_at is not None

    def _check(self):
        stats = self.nic.reorder.stats
        hol_delta = stats.hol_events - self._last_hol
        best_effort_delta = stats.best_effort - self._last_best_effort
        transmitted_delta = stats.transmitted - self._last_transmitted
        self._last_hol = stats.hol_events
        self._last_best_effort = stats.best_effort
        self._last_transmitted = stats.transmitted

        if self.in_fallback:
            if (
                self.auto_restore_after_ns is not None
                and self.sim.now - self._fell_back_at >= self.auto_restore_after_ns
            ):
                self.nic.restore_plb()
                self._fell_back_at = None
                self._strike_count = 0
                self.restores += 1
            return

        hol_rate = hol_delta * SECOND / self.period_ns
        disorder = (
            best_effort_delta / transmitted_delta if transmitted_delta else 0.0
        )
        unhealthy = (
            hol_rate > self.hol_events_per_s_threshold
            or disorder > self.disorder_rate_threshold
        )
        if unhealthy:
            self._strike_count += 1
            if self._strike_count >= self.strikes:
                self.nic.fallback_to_rss()
                self._fell_back_at = self.sim.now
                self.fallbacks += 1
        else:
            self._strike_count = 0

    def stop(self):
        self._task.cancel()
