"""PLB health watchdog: automatic fallback to RSS (§4.1, remediation 5).

"If the previous methods do not work and we are unable to pinpoint the
root cause, the GW pod can dynamically switch from PLB mode to RSS mode
to attempt remediation."  In production this is an operator action; the
watchdog automates the trigger: it samples the reorder engine's HOL and
disorder counters every period and falls back when they stay above
threshold for ``strikes`` consecutive periods (a single noisy period is
tolerated -- minor HOL is normal and handled by the timeout).

The watchdog can also restore PLB after a configurable quiet interval,
for operators who want auto-recovery rather than a sticky fallback.

:class:`FpgaWatchdog` models the other watchdog the paper relies on in
production: a liveness monitor that polls the FPGA pipeline's heartbeat
and, after ``strikes`` missed beats, resets the pipeline (dropping all
in-flight reorder state) to bring the NIC back.
"""

from repro.sim.units import MS, SECOND


class PlbWatchdog:
    """Monitors one pod's reorder health and drives mode fallback.

    Parameters:
        sim: the simulator.
        nic: the pod's :class:`~repro.core.nic.NicPipeline`.
        hol_events_per_s_threshold: sustained HOL rate that trips a strike.
        disorder_rate_threshold: sustained disorder fraction that trips.
        strikes: consecutive bad periods before falling back.
        period_ns: sampling period.
        auto_restore_after_ns: restore PLB after this long in RSS
            (None = stay in RSS until told otherwise).
    """

    def __init__(
        self,
        sim,
        nic,
        hol_events_per_s_threshold=1000.0,
        disorder_rate_threshold=1e-3,
        strikes=3,
        period_ns=SECOND // 10,
        auto_restore_after_ns=None,
    ):
        self.sim = sim
        self.nic = nic
        self.hol_events_per_s_threshold = hol_events_per_s_threshold
        self.disorder_rate_threshold = disorder_rate_threshold
        self.strikes = strikes
        self.period_ns = period_ns
        self.auto_restore_after_ns = auto_restore_after_ns
        self.fallbacks = 0
        self.restores = 0
        self._strike_count = 0
        self._last_hol = 0
        self._last_best_effort = 0
        self._last_transmitted = 0
        self._fell_back_at = None
        self._task = sim.every(period_ns, self._check)

    @property
    def in_fallback(self):
        return self.nic.config.mode == "rss" and self._fell_back_at is not None

    def _check(self):
        stats = self.nic.reorder.stats
        hol_delta = stats.hol_events - self._last_hol
        best_effort_delta = stats.best_effort - self._last_best_effort
        transmitted_delta = stats.transmitted - self._last_transmitted
        self._last_hol = stats.hol_events
        self._last_best_effort = stats.best_effort
        self._last_transmitted = stats.transmitted

        if self.in_fallback:
            if (
                self.auto_restore_after_ns is not None
                and self.sim.now - self._fell_back_at >= self.auto_restore_after_ns
            ):
                self.nic.restore_plb()
                self._fell_back_at = None
                self._strike_count = 0
                self.restores += 1
            return

        hol_rate = hol_delta * SECOND / self.period_ns
        disorder = (
            best_effort_delta / transmitted_delta if transmitted_delta else 0.0
        )
        unhealthy = (
            hol_rate > self.hol_events_per_s_threshold
            or disorder > self.disorder_rate_threshold
        )
        if unhealthy:
            self._strike_count += 1
            if self._strike_count >= self.strikes:
                self.nic.fallback_to_rss()
                self._fell_back_at = self.sim.now
                self.fallbacks += 1
        else:
            self._strike_count = 0

    def stop(self):
        self._task.cancel()


class FpgaWatchdog:
    """Detects a stalled FPGA pipeline and resets it (§4.1 remediation).

    Polls ``nic.heartbeat()`` every ``period_ns``; a poll where the beat
    did not advance counts as a strike, and ``strikes`` consecutive
    strikes trigger ``nic.recover_fpga()`` (pipeline reload: the in-flight
    reorder state is dropped and traffic resumes).  Worst-case detection
    latency is therefore ``(strikes + 1) * period_ns``.

    Parameters:
        sim: the simulator.
        nic: the pod's :class:`~repro.core.nic.NicPipeline`.
        period_ns: heartbeat polling period.
        strikes: consecutive missed beats before resetting.
        on_reset: optional callback ``on_reset(watchdog)`` fired after
            each reset (fault injectors hook detection metrics here).
    """

    def __init__(self, sim, nic, period_ns=10 * MS, strikes=2, on_reset=None):
        self.sim = sim
        self.nic = nic
        self.period_ns = period_ns
        self.strikes = strikes
        self.on_reset = on_reset
        self.resets = 0
        self.inflight_dropped = 0
        self._strike_count = 0
        self._last_beat = nic.heartbeat()
        self._task = sim.every(period_ns, self._check)

    def _check(self):
        beat = self.nic.heartbeat()
        if beat == self._last_beat:
            self._strike_count += 1
            if self._strike_count >= self.strikes:
                self.inflight_dropped += self.nic.recover_fpga()
                self.resets += 1
                self._strike_count = 0
                self._last_beat = self.nic.heartbeat()
                if self.on_reset is not None:
                    self.on_reset(self)
        else:
            self._strike_count = 0
            self._last_beat = beat

    def stop(self):
        self._task.cancel()
