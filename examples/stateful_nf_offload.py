#!/usr/bin/env python3
"""Stateful NFs under PLB, and the FPGA session-offload fix (§7).

Shows the paper's stateful-NF findings: a write-light NF scales linearly
with cores, a write-heavy NF (per-packet counters) collapses under
cache-coherence traffic -- and the roadmap fix, offloading sessions to
the FPGA, restores scaling while keeping PLB's heavy-hitter tolerance.

Run:  python examples/stateful_nf_offload.py
"""

from repro.core.offload import FpgaSessionOffload, offload_throughput_mpps
from repro.cpu.stateful import write_heavy_nf, write_light_nf
from repro.experiments.common import ScaledPod
from repro.sim import MS
from repro.workloads import CbrSource, uniform_population


def scaling_table():
    light = write_light_nf()
    heavy = write_heavy_nf()
    print(f"{'cores':>6} {'write-light':>12} {'write-heavy':>12} "
          f"{'heavy+lockfree':>15} {'heavy+offload':>14}   (Mpps)")
    for cores in (1, 2, 4, 8, 16, 32, 44):
        print(
            f"{cores:>6}"
            f" {light.throughput_mpps(cores, 'plb'):>12.2f}"
            f" {heavy.throughput_mpps(cores, 'plb'):>12.2f}"
            f" {heavy.throughput_mpps(cores, 'plb', locked=False):>15.2f}"
            f" {offload_throughput_mpps(heavy, cores, 0.99):>14.2f}"
        )


def simulated_offload():
    print("\nsimulated fast path (4 cores, 200 flows, 80% load):")
    for offloaded in (False, True):
        scaled = ScaledPod(data_cores=4, per_core_pps=100_000, seed=3)
        if offloaded:
            scaled.pod.nic.session_offload = FpgaSessionOffload(
                scaled.sim, capacity=4096
            )
        population = uniform_population(200, tenants=20)
        CbrSource(
            scaled.sim, scaled.rngs.stream("traffic"), scaled.pod.ingress,
            population, rate_pps=320_000,
        )
        scaled.run_for(200 * MS)
        cpu = sum(core.stats.processed for core in scaled.pod.cores)
        fast = scaled.pod.counters.get("offload_fast_path")
        label = "with offload" if offloaded else "no offload  "
        print(f"  {label}: {scaled.pod.transmitted()} delivered, "
              f"{cpu} via CPU, {fast} via FPGA fast path")


def main():
    print("Write-heavy stateful NFs anti-scale under PLB (coherence traffic);")
    print("removing locks barely helps; FPGA session offload recovers it.\n")
    scaling_table()
    simulated_offload()


if __name__ == "__main__":
    main()
