#!/usr/bin/env python3
"""Containerized AZ build-out with BGP proxy and elastic migration (§5, §7).

Builds the Fig. 15 available zone -- 8 gateway cluster types x 4 gateways
consolidated onto 8 Albatross servers -- wires one server's pods to the
uplink switch through a BGP proxy, then runs a make-before-break pod
migration with real BGP route state.

Run:  python examples/containerized_az.py
"""

from repro.bgp.fsm import establish_pair
from repro.bgp.speaker import BgpSpeaker
from repro.bgp.switch import SAFE_PEER_THRESHOLD, UplinkSwitch, direct_peering_count
from repro.container.elasticity import ElasticityManager
from repro.container.scheduler import FleetScheduler, ServerSpec
from repro.container.sriov import VfAllocator
from repro.sim import SECOND, Simulator

CLUSTER_TYPES = ["xgw", "igw", "vgw", "cgw", "sgw", "pgw", "tgw", "dgw"]


def main():
    sim = Simulator()

    # --- 1. Schedule 32 GW pods onto 8 servers (Fig. 15). -----------------
    fleet = FleetScheduler([ServerSpec(f"albatross{i}") for i in range(8)])
    pods = [
        (f"{cluster}-{replica}", 22, 64)
        for cluster in CLUSTER_TYPES
        for replica in range(4)
    ]
    placements = fleet.place_all(pods)
    print(f"placed {len(placements)} GW pods on {fleet.servers_used()} servers "
          f"(fleet core utilization {fleet.utilization():.0%})")
    print(f"server albatross0 hosts: {fleet.pods_on('albatross0')}")

    # --- 2. NIC virtualization: 4 HA VFs per pod (appendix B). ------------
    allocator = VfAllocator()
    allocator.wire_switches(["sw0", "sw1", "sw2", "sw3"])
    sample_pod = fleet.pods_on("albatross0")[0]
    vfs = allocator.allocate(sample_pod, numa_node=0, data_cores=20)
    print(f"\npod {sample_pod!r} VFs: "
          f"{[(vf.port.name, vf.port.uplink_switch) for vf in vfs]}")
    allocator.cards[0].ports[0].fail()
    print(f"after one port failure the pod keeps "
          f"{len(allocator.usable_vfs(sample_pod))}/4 links "
          f"(connected: {allocator.pod_connected(sample_pod)})")

    # --- 3. BGP proxy keeps the switch under its 64-peer limit. -----------
    pods_per_server = 4
    direct = direct_peering_count(32, pods_per_server)
    print(f"\ndirect peering would give the switch {direct} BGP peers "
          f"(safe threshold {SAFE_PEER_THRESHOLD}); "
          f"the proxy keeps it at 32")

    from repro.bgp.proxy import BgpProxy

    switch = UplinkSwitch(sim, "switch")
    proxy = BgpProxy(sim, "proxy", 65100, 0x0A000100,
                     switch_peer_name="switch", router_ip=0x0A000100)
    establish_pair(sim, proxy, switch, hold_time_s=9)
    speakers = {}
    for index, name in enumerate(fleet.pods_on("albatross0")):
        speaker = BgpSpeaker(sim, name, 65100, 0x0A000200 + index)
        establish_pair(sim, speaker, proxy, hold_time_s=9)
        speakers[name] = speaker
    sim.run_until(1 * SECOND)
    for index, speaker in enumerate(speakers.values()):
        speaker.advertise(0x0A640000 + index, 32)
    sim.run_until(2 * SECOND)
    print(f"switch peers: {switch.peer_count}, "
          f"routes learned via proxy: {switch.route_count()}")

    # --- 4. Elastic make-before-break migration (§7). ---------------------
    vip = (0x0AC80000, 32)
    old_name = list(speakers)[0]
    speakers[old_name].advertise(*vip)
    sim.run_until(3 * SECOND)

    new_speaker = BgpSpeaker(sim, "bigger-pod", 65100, 0x0A0002FF)
    establish_pair(sim, new_speaker, proxy, hold_time_s=9)
    speakers["bigger-pod"] = new_speaker
    sim.run_until(4 * SECOND)

    manager = ElasticityManager(
        sim,
        prepare_fn=lambda name: print(f"  t={sim.now / SECOND:.0f}s: "
                                      f"pod {name!r} ready (10 s spin-up)"),
        validate_fn=lambda name: switch.knows_route(*vip),
        advertise_fn=lambda name: speakers[name].advertise(*vip),
        withdraw_fn=lambda name: speakers[name].withdraw(*vip),
    )
    print(f"\nmigrating VIP from {old_name!r} to 'bigger-pod' "
          f"(advertise-validate-withdraw):")
    plan = manager.start_migration(old_name, "bigger-pod")
    sim.run_until(4 * SECOND + 60 * SECOND)
    print(f"  migration phase: {plan.phase}")
    holders = set(switch.rib.get(vip, {}))
    print(f"  VIP now reachable via: {holders or '(direct pods withdrawn)'}")


if __name__ == "__main__":
    main()
