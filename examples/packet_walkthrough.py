#!/usr/bin/env python3
"""Byte-level packet walkthrough: what a GW pod actually does to frames.

Follows real wire bytes through the functional dataplane: VXLAN decap,
VM-NC lookup, ACL, SNAT, re-encap -- printing each header transformation.

Run:  python examples/packet_walkthrough.py
"""

from repro.dataplane import AclAction, AclClassifier, AclRule, SnatNf, VxlanGateway
from repro.dataplane.vxlan_gateway import ForwardAction
from repro.packet import headers as hdr
from repro.packet.flows import FlowKey, ip_from_str
from repro.packet.parser import PacketParser, build_vxlan_frame


def ip(text):
    return ip_from_str(text)


def show_frame(label, frame):
    parser = PacketParser(split_headers=True)
    try:
        parsed = parser.parse(frame)
        if parsed.vxlan is None:
            raise ValueError("no overlay")
    except Exception:
        ipv4 = hdr.Ipv4Header.unpack(frame[hdr.ETHERNET_LEN:])
        print(f"  {label}: [no overlay] "
              f"{_ip(ipv4.src_ip)} -> {_ip(ipv4.dst_ip)} ttl={ipv4.ttl} "
              f"({len(frame)} bytes)")
        return
    inner_ip = hdr.Ipv4Header.unpack(parsed.payload_bytes[hdr.ETHERNET_LEN:])
    print(f"  {label}: outer {_ip(parsed.ipv4.src_ip)} -> "
          f"{_ip(parsed.ipv4.dst_ip)} vni={parsed.vni} | "
          f"inner {_ip(inner_ip.src_ip)} -> {_ip(inner_ip.dst_ip)} "
          f"ttl={inner_ip.ttl} ({len(frame)} bytes)")


def _ip(value):
    return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))


def inner_frame(src, dst, ttl=64, payload=b"GET / HTTP/1.1"):
    ipv4 = hdr.Ipv4Header(src, dst, hdr.IPPROTO_UDP,
                          hdr.IPV4_MIN_LEN + len(payload), ttl=ttl)
    ethernet = hdr.EthernetHeader(b"\x02\x00\x00\x00\x00\x02",
                                  b"\x02\x00\x00\x00\x00\x01",
                                  hdr.ETHERTYPE_IPV4)
    return ethernet.pack() + ipv4.pack() + payload


def main():
    gateway = VxlanGateway(local_vtep_ip=ip("10.0.0.254"))
    gateway.map_vm(vni=7, vm_ip=ip("172.16.0.20"), nc_ip=ip("10.0.1.2"))
    gateway.add_route(0, 0, 0)  # default: internet egress (decap)
    gateway.add_route(ip("192.168.0.0"), 16, ip("10.0.2.2"))  # IDC tunnel

    vtep_flow = FlowKey(ip("10.0.9.9"), ip("10.0.0.254"), 43210, 4789, 17)

    print("1) VPC-VPC (east-west): VM 172.16.0.10 -> VM 172.16.0.20")
    frame = build_vxlan_frame(
        vtep_flow, 7, inner_frame(ip("172.16.0.10"), ip("172.16.0.20"))
    )
    show_frame("in ", frame)
    action, out = gateway.process_frame(frame)
    print(f"  action: {action.value}")
    show_frame("out", out)

    print("\n2) VPC-IDC: VM -> 192.168.3.4 (hybrid-cloud tunnel)")
    frame = build_vxlan_frame(
        vtep_flow, 7, inner_frame(ip("172.16.0.10"), ip("192.168.3.4"))
    )
    show_frame("in ", frame)
    action, out = gateway.process_frame(frame)
    print(f"  action: {action.value}")
    show_frame("out", out)

    print("\n3) VPC-Internet with SNAT: VM -> 93.184.216.34")
    nat = SnatNf(public_ip=ip("203.0.113.1"))
    acl = AclClassifier()
    acl.add_rule(AclRule("deny-telnet", AclAction.DENY, dst_ports=(23, 23)))
    inner = FlowKey(ip("172.16.0.10"), ip("93.184.216.34"), 5000, 443, 6)
    if acl.permits(inner):
        translated = nat.translate(inner)
        print(f"  ACL: permit; SNAT: {_ip(inner.src_ip)}:{inner.src_port} -> "
              f"{_ip(translated.src_ip)}:{translated.src_port}")
    frame = build_vxlan_frame(
        vtep_flow, 7, inner_frame(ip("172.16.0.10"), ip("93.184.216.34"))
    )
    action, out = gateway.process_frame(frame)
    print(f"  action: {action.value} (overlay stripped toward the border)")
    show_frame("out", out)

    print("\n4) Return traffic restored through the NAT session:")
    restored = nat.restore(FlowKey(ip("93.184.216.34"),
                                   ip("203.0.113.1"), 443,
                                   nat.translate(inner).src_port, 6))
    print(f"  {_ip(restored.src_ip)}:{restored.src_port} -> "
          f"{_ip(restored.dst_ip)}:{restored.dst_port}")

    print("\n5) ACL deny becomes a DROP_ACL verdict -> PLB active drop flag:")
    blocked = FlowKey(ip("172.16.0.10"), ip("93.184.216.34"), 5000, 23, 6)
    action, rule = acl.classify(blocked)
    print(f"  {action.value} by rule {rule.name!r} "
          f"(the NIC releases the reorder slot immediately)")


if __name__ == "__main__":
    main()
