#!/usr/bin/env python3
"""PLB vs RSS under a heavy hitter (the Fig. 8 story).

Three data cores at 10% background load; one flow ramps to 130% of a
single core's capacity.  RSS pins the flow to one core, which melts;
PLB sprays it across all three and nothing drops.

Run:  python examples/plb_vs_rss.py
"""

from repro.experiments.common import ScaledPod
from repro.packet.flows import flow_for_tenant
from repro.sim import MS
from repro.workloads import CbrSource, FlowPopulation, uniform_population

PER_CORE_PPS = 100_000
CORES = 3


def run_mode(mode, hitter_fraction):
    scaled = ScaledPod(data_cores=CORES, per_core_pps=PER_CORE_PPS, mode=mode, seed=5)
    background = uniform_population(500, tenants=50)
    CbrSource(
        scaled.sim, scaled.rngs.stream("bg"), scaled.pod.ingress, background,
        rate_pps=int(0.1 * PER_CORE_PPS * CORES),
    )
    hitter = FlowPopulation([flow_for_tenant(999, 0)], vnis=[999])
    CbrSource(
        scaled.sim, scaled.rngs.stream("hh"), scaled.pod.ingress, hitter,
        rate_pps=int(hitter_fraction * PER_CORE_PPS),
    )
    duration = 200 * MS
    scaled.run_for(duration)
    utils = scaled.pod.core_utilizations(duration)
    offered = int(0.1 * PER_CORE_PPS * CORES) + int(hitter_fraction * PER_CORE_PPS)
    delivered = scaled.pod.transmitted() / (duration / 1e9)
    loss = max(0.0, 1 - delivered / offered)
    return utils, loss


def main():
    print(f"{CORES} cores, 10% background, heavy hitter at 130% of one core\n")
    for mode in ("rss", "plb"):
        utils, loss = run_mode(mode, hitter_fraction=1.3)
        print(f"{mode.upper():>4}  loss={loss:.1%}")
        for i, u in enumerate(utils):
            print(f"      core{i} |{'#' * int(u * 40):<40}| {u:.0%}")
        print()
    print("RSS: the hitter lands on one core -> overload and loss.")
    print("PLB: the same flow is sprayed packet-by-packet -> even load, no loss,")
    print("     and the reorder engine still delivers it in order.")


if __name__ == "__main__":
    main()
