#!/usr/bin/env python3
"""Tenant overload protection demo (the Fig. 13/14 scenario, condensed).

Four tenants share a GW pod; tenant 1 suddenly bursts to 17x the pod's
fair share.  Without the two-stage rate limiter everyone's SLA breaks;
with it, tenant 1 is clipped in the NIC pipeline and the others never
notice.

Run:  python examples/heavy_hitter_protection.py
"""

from repro import RngRegistry, TwoStageRateLimiter
from repro.experiments.common import ScaledPod
from repro.sim import MS, SECOND
from repro.workloads.tenants import TenantSet, overload_scenario_profiles

SCALE = 1 / 200  # paper rates are tens of Mpps; run at hundreds of Kpps


def run_scenario(with_limiter):
    scaled = ScaledPod(data_cores=4, per_core_pps=25_000, seed=7, rx_capacity=256)
    if with_limiter:
        scaled.pod.nic.rate_limiter = TwoStageRateLimiter(
            scaled.rngs.stream("limiter"),
            stage1_rate_pps=int(8e6 * SCALE),   # paper: 8 Mpps
            stage2_rate_pps=int(2e6 * SCALE),   # paper: 2 Mpps
        )
    counts = scaled.egress_counts_by_vni()
    profiles = overload_scenario_profiles(
        rates_mpps=(4, 3, 2, 1), burst_rate_mpps=34,
        burst_at_ns=500 * MS, scale=SCALE,
    )
    TenantSet(scaled.sim, scaled.rngs, scaled.pod.ingress, profiles)

    scaled.run_for(500 * MS)           # steady state
    before = dict(counts)
    scaled.run_for(1 * SECOND)         # tenant 1 bursting
    after = {vni: counts.get(vni, 0) - before.get(vni, 0) for vni in counts}

    label = "WITH two-stage limiter" if with_limiter else "WITHOUT limiter"
    print(f"\n--- {label} ---")
    print(f"{'tenant':>8} {'offered kpps':>14} {'delivered kpps':>16}")
    offered = {1: 170, 2: 15, 3: 10, 4: 5}
    for vni in sorted(after):
        print(f"{vni:>8} {offered[vni]:>14} {after[vni] / 1000:>16.1f}")


def main():
    print("GW pod capacity: 100 Kpps (scaled from the paper's 20 Mpps)")
    print("tenant 1 bursts from 20 to 170 Kpps at t=0.5s (paper: 4 -> 34 Mpps)")
    run_scenario(with_limiter=False)
    run_scenario(with_limiter=True)
    print("\nWithout the limiter the burst starves every tenant; with it,")
    print("tenant 1 is clipped to 50 Kpps in the NIC and the rest are whole.")


if __name__ == "__main__":
    main()
