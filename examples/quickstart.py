#!/usr/bin/env python3
"""Quickstart: one GW pod on an Albatross server, traffic through the
full FPGA NIC pipeline (PLB spray -> CPU service -> reorder -> wire).

Run:  python examples/quickstart.py
"""

from repro import AlbatrossServer, PodConfig, RngRegistry, Simulator
from repro.sim import MS, US
from repro.workloads import CbrSource, uniform_population


def main():
    # A deterministic simulation: same seed, same run, bit for bit.
    sim = Simulator()
    rngs = RngRegistry(seed=42)

    # A dual-NUMA Albatross server (2 x 48 cores) hosting one gateway pod
    # with 8 data cores running the VPC-Internet service in PLB mode.
    server = AlbatrossServer(sim, rngs)
    pod = server.add_pod(
        PodConfig(name="vpc-internet-gw", data_cores=8, service="VPC-Internet")
    )
    print(f"pod placed on NUMA node {pod.numa_node}, "
          f"{pod.config.reorder_queues} reorder queues")
    print(f"nominal capacity: {pod.expected_capacity_mpps():.2f} Mpps")

    # 1000 flows across 50 tenants at 60% of capacity.
    population = uniform_population(1000, tenants=50)
    rate = int(pod.expected_capacity_mpps() * 1e6 * 0.6)
    CbrSource(sim, rngs.stream("traffic"), pod.ingress, population, rate_pps=rate)

    # Run 50 simulated milliseconds.
    sim.run_until(50 * MS)

    histogram = pod.latency_histogram
    stats = pod.reorder_stats
    print(f"\noffered {rate / 1e6:.2f} Mpps for 50 ms")
    print(f"transmitted: {pod.transmitted()} packets "
          f"({pod.throughput_mpps():.2f} Mpps)")
    print(f"latency: mean {histogram.mean_ns / US:.1f} us, "
          f"p99 {histogram.percentile(0.99) / US:.1f} us, "
          f"max {histogram.max_ns / US:.1f} us")
    print(f"reorder engine: {stats.in_order} in order, "
          f"{stats.best_effort} best-effort "
          f"(disorder rate {stats.disorder_rate():.2e})")
    print(f"per-core utilization: "
          f"{[round(u, 2) for u in pod.core_utilizations(50 * MS)]}")


if __name__ == "__main__":
    main()
